#include "pki/root_store.h"

namespace tlsharm::pki {

const char* ToString(VerifyStatus status) {
  switch (status) {
    case VerifyStatus::kOk: return "ok";
    case VerifyStatus::kEmptyChain: return "empty chain";
    case VerifyStatus::kNameMismatch: return "name mismatch";
    case VerifyStatus::kExpired: return "expired";
    case VerifyStatus::kNotYetValid: return "not yet valid";
    case VerifyStatus::kBadSignature: return "bad signature";
    case VerifyStatus::kNotCa: return "intermediate is not a CA";
    case VerifyStatus::kUntrustedRoot: return "untrusted root";
  }
  return "unknown";
}

void RootStore::AddRoot(const std::string& name, SignatureScheme scheme,
                        ByteView public_key) {
  roots_[name] = RootEntry{scheme,
                           Bytes(public_key.begin(), public_key.end())};
}

bool RootStore::IsTrustedRoot(const std::string& name,
                              ByteView public_key) const {
  const auto it = roots_.find(name);
  return it != roots_.end() &&
         ConstantTimeEqual(it->second.public_key, public_key);
}

VerifyStatus RootStore::Verify(const CertificateChain& chain,
                               const std::string& host, SimTime now) const {
  if (chain.empty()) return VerifyStatus::kEmptyChain;
  if (!CertificateCoversHost(chain.front(), host)) {
    return VerifyStatus::kNameMismatch;
  }
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Certificate& cert = chain[i];
    if (now < cert.data.not_before) return VerifyStatus::kNotYetValid;
    if (now > cert.data.not_after) return VerifyStatus::kExpired;
    if (i > 0 && !cert.data.is_ca) return VerifyStatus::kNotCa;

    const Bytes tbs = SerializeTbs(cert.data);
    if (i + 1 < chain.size()) {
      // Signed by the next certificate in the chain.
      const Certificate& issuer = chain[i + 1];
      if (cert.data.issuer != issuer.data.subject_cn) {
        return VerifyStatus::kBadSignature;
      }
      const auto& scheme = GetScheme(issuer.data.scheme);
      const auto sig = scheme.ParseSignature(cert.signature);
      if (!sig || !scheme.Verify(issuer.data.public_key, tbs, *sig)) {
        return VerifyStatus::kBadSignature;
      }
    } else {
      // Chain terminus: must be signed by a trusted root. Either the cert
      // is itself a self-signed root in the store, or its issuer is.
      const auto it = roots_.find(cert.data.issuer);
      if (it == roots_.end()) return VerifyStatus::kUntrustedRoot;
      const auto& scheme = GetScheme(it->second.scheme);
      const auto sig = scheme.ParseSignature(cert.signature);
      if (!sig || !scheme.Verify(it->second.public_key, tbs, *sig)) {
        return VerifyStatus::kBadSignature;
      }
    }
  }
  return VerifyStatus::kOk;
}

}  // namespace tlsharm::pki
