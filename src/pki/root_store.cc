#include "pki/root_store.h"

#include "crypto/tuning.h"

namespace tlsharm::pki {

bool SignatureVerifyCache::VerifyCert(SignatureScheme scheme_id,
                                      ByteView public_key, ByteView tbs,
                                      ByteView signature) {
  crypto::Sha256 h;
  const std::uint8_t id = static_cast<std::uint8_t>(scheme_id);
  h.Update(ByteView(&id, 1));
  const auto add = [&h](ByteView field) {
    std::uint8_t len[4] = {static_cast<std::uint8_t>(field.size() >> 24),
                           static_cast<std::uint8_t>(field.size() >> 16),
                           static_cast<std::uint8_t>(field.size() >> 8),
                           static_cast<std::uint8_t>(field.size())};
    h.Update(ByteView(len, 4));
    h.Update(field);
  };
  add(public_key);
  add(tbs);
  add(signature);
  const crypto::Sha256Digest key = h.Finish();
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  const auto& scheme = GetScheme(scheme_id);
  const auto sig = scheme.ParseSignature(signature);
  const bool ok = sig.has_value() && scheme.Verify(public_key, tbs, *sig);
  cache_.emplace(key, ok);
  return ok;
}

const char* ToString(VerifyStatus status) {
  switch (status) {
    case VerifyStatus::kOk: return "ok";
    case VerifyStatus::kEmptyChain: return "empty chain";
    case VerifyStatus::kNameMismatch: return "name mismatch";
    case VerifyStatus::kExpired: return "expired";
    case VerifyStatus::kNotYetValid: return "not yet valid";
    case VerifyStatus::kBadSignature: return "bad signature";
    case VerifyStatus::kNotCa: return "intermediate is not a CA";
    case VerifyStatus::kUntrustedRoot: return "untrusted root";
  }
  return "unknown";
}

void RootStore::AddRoot(const std::string& name, SignatureScheme scheme,
                        ByteView public_key) {
  roots_[name] = RootEntry{scheme,
                           Bytes(public_key.begin(), public_key.end())};
}

bool RootStore::IsTrustedRoot(const std::string& name,
                              ByteView public_key) const {
  const auto it = roots_.find(name);
  return it != roots_.end() &&
         ConstantTimeEqual(it->second.public_key, public_key);
}

VerifyStatus RootStore::Verify(const CertificateChain& chain,
                               const std::string& host, SimTime now) const {
  return Verify(chain, host, now, nullptr);
}

VerifyStatus RootStore::Verify(const CertificateChain& chain,
                               const std::string& host, SimTime now,
                               SignatureVerifyCache* cache) const {
  if (crypto::ReferenceCryptoEnabled()) cache = nullptr;
  const auto check_sig = [cache](SignatureScheme scheme_id, ByteView pubkey,
                                 ByteView tbs, ByteView signature) {
    if (cache) return cache->VerifyCert(scheme_id, pubkey, tbs, signature);
    const auto& scheme = GetScheme(scheme_id);
    const auto sig = scheme.ParseSignature(signature);
    return sig.has_value() && scheme.Verify(pubkey, tbs, *sig);
  };
  if (chain.empty()) return VerifyStatus::kEmptyChain;
  if (!CertificateCoversHost(chain.front(), host)) {
    return VerifyStatus::kNameMismatch;
  }
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Certificate& cert = chain[i];
    if (now < cert.data.not_before) return VerifyStatus::kNotYetValid;
    if (now > cert.data.not_after) return VerifyStatus::kExpired;
    if (i > 0 && !cert.data.is_ca) return VerifyStatus::kNotCa;

    const Bytes tbs = SerializeTbs(cert.data);
    if (i + 1 < chain.size()) {
      // Signed by the next certificate in the chain.
      const Certificate& issuer = chain[i + 1];
      if (cert.data.issuer != issuer.data.subject_cn) {
        return VerifyStatus::kBadSignature;
      }
      if (!check_sig(issuer.data.scheme, issuer.data.public_key, tbs,
                     cert.signature)) {
        return VerifyStatus::kBadSignature;
      }
    } else {
      // Chain terminus: must be signed by a trusted root. Either the cert
      // is itself a self-signed root in the store, or its issuer is.
      const auto it = roots_.find(cert.data.issuer);
      if (it == roots_.end()) return VerifyStatus::kUntrustedRoot;
      if (!check_sig(it->second.scheme, it->second.public_key, tbs,
                     cert.signature)) {
        return VerifyStatus::kBadSignature;
      }
    }
  }
  return VerifyStatus::kOk;
}

}  // namespace tlsharm::pki
