// Certificate authorities and issuance.
//
// The simulation uses a two-tier hierarchy: trusted roots (in the simulated
// NSS store), intermediates operated by "issuers" (standing in for the DV
// CAs of 2016), and an untrusted CA for the self-signed / invalid-cert share
// of the population.
#pragma once

#include <memory>
#include <string>

#include "crypto/drbg.h"
#include "pki/certificate.h"

namespace tlsharm::pki {

class CertificateAuthority {
 public:
  // Creates a CA with a fresh keypair; `scheme` selects the Schnorr group.
  CertificateAuthority(std::string name, SignatureScheme scheme,
                       crypto::Drbg& drbg);

  const std::string& Name() const { return name_; }
  SignatureScheme Scheme() const { return scheme_; }
  const Bytes& PublicKey() const { return key_pair_.public_key; }

  // Self-signed CA certificate (for roots, and for presenting intermediates
  // within chains; intermediates should instead use the cert issued by
  // their parent via IssueCaCertificate).
  Certificate SelfSigned(SimTime not_before, SimTime not_after,
                         crypto::Drbg& drbg) const;

  // Issues a leaf certificate binding `public_key` to the given names.
  // `serial` 0 draws from the CA's sequential counter; callers that issue
  // concurrently or out of order (lazy fleet materialization) pass an
  // explicit nonzero serial so the certificate bytes are a pure function
  // of the call's inputs.
  Certificate IssueLeaf(const std::string& subject_cn,
                        std::vector<std::string> sans, ByteView public_key,
                        SimTime not_before, SimTime not_after,
                        crypto::Drbg& drbg, std::uint64_t serial = 0) const;

  // Issues a CA certificate to a subordinate authority.
  Certificate IssueCaCertificate(const CertificateAuthority& subordinate,
                                 SimTime not_before, SimTime not_after,
                                 crypto::Drbg& drbg) const;

 private:
  Certificate Issue(CertificateData data, crypto::Drbg& drbg) const;

  std::string name_;
  SignatureScheme scheme_;
  crypto::SchnorrKeyPair key_pair_;
  mutable std::uint64_t next_serial_ = 1;
};

}  // namespace tlsharm::pki
