#include "pki/certificate.h"

#include <cstdlib>

#include "crypto/sha256.h"

namespace tlsharm::pki {
namespace {

void AppendString(Bytes& out, const std::string& s) {
  AppendUint(out, s.size(), 2);
  Append(out, ToBytes(s));
}

void AppendBlob(Bytes& out, ByteView b) {
  AppendUint(out, b.size(), 2);
  Append(out, b);
}

// Sequential reader with failure latching, mirroring the TLS wire reader.
class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  std::uint64_t ReadInt(int width) {
    if (failed_ || off_ + static_cast<std::size_t>(width) > data_.size()) {
      failed_ = true;
      return 0;
    }
    const std::uint64_t v = ReadUint(data_, off_, width);
    off_ += static_cast<std::size_t>(width);
    return v;
  }

  Bytes ReadBlob() {
    const std::size_t len = static_cast<std::size_t>(ReadInt(2));
    if (failed_ || off_ + len > data_.size()) {
      failed_ = true;
      return {};
    }
    Bytes out(data_.begin() + off_, data_.begin() + off_ + len);
    off_ += len;
    return out;
  }

  std::string ReadString() { return ToString(ReadBlob()); }

  bool Failed() const { return failed_; }
  bool AtEnd() const { return off_ == data_.size(); }

 private:
  ByteView data_;
  std::size_t off_ = 0;
  bool failed_ = false;
};

}  // namespace

const crypto::SchnorrScheme& GetScheme(SignatureScheme scheme) {
  switch (scheme) {
    case SignatureScheme::kSchnorrSim61:
      return crypto::SchnorrSim61();
    case SignatureScheme::kSchnorrSim256:
      return crypto::SchnorrSim256();
  }
  std::abort();
}

Bytes SerializeTbs(const CertificateData& data) {
  Bytes out;
  AppendString(out, data.subject_cn);
  AppendUint(out, data.sans.size(), 2);
  for (const auto& san : data.sans) AppendString(out, san);
  AppendString(out, data.issuer);
  AppendUint(out, data.serial, 8);
  AppendUint(out, static_cast<std::uint64_t>(data.not_before), 8);
  AppendUint(out, static_cast<std::uint64_t>(data.not_after), 8);
  AppendUint(out, static_cast<std::uint64_t>(data.scheme), 1);
  AppendBlob(out, data.public_key);
  AppendUint(out, data.is_ca ? 1 : 0, 1);
  return out;
}

Bytes SerializeCertificate(const Certificate& cert) {
  Bytes out = SerializeTbs(cert.data);
  AppendBlob(out, cert.signature);
  return out;
}

std::optional<Certificate> ParseCertificate(ByteView wire) {
  Reader r(wire);
  Certificate cert;
  cert.data.subject_cn = r.ReadString();
  const std::size_t n_sans = static_cast<std::size_t>(r.ReadInt(2));
  if (n_sans > 10000) return std::nullopt;
  for (std::size_t i = 0; i < n_sans && !r.Failed(); ++i) {
    cert.data.sans.push_back(r.ReadString());
  }
  cert.data.issuer = r.ReadString();
  cert.data.serial = r.ReadInt(8);
  cert.data.not_before = static_cast<SimTime>(r.ReadInt(8));
  cert.data.not_after = static_cast<SimTime>(r.ReadInt(8));
  const std::uint64_t scheme = r.ReadInt(1);
  if (scheme != 1 && scheme != 2) return std::nullopt;
  cert.data.scheme = static_cast<SignatureScheme>(scheme);
  cert.data.public_key = r.ReadBlob();
  cert.data.is_ca = r.ReadInt(1) != 0;
  cert.signature = r.ReadBlob();
  if (r.Failed() || !r.AtEnd()) return std::nullopt;
  return cert;
}

Bytes Certificate::Fingerprint() const {
  return crypto::Sha256HashBytes(SerializeCertificate(*this));
}

bool NameMatches(const std::string& pattern, const std::string& host) {
  if (pattern == host) return true;
  if (pattern.size() > 2 && pattern[0] == '*' && pattern[1] == '.') {
    const std::string_view suffix(pattern.data() + 1, pattern.size() - 1);
    if (host.size() <= suffix.size()) return false;
    if (host.compare(host.size() - suffix.size(), suffix.size(),
                     suffix.data(), suffix.size()) != 0) {
      return false;
    }
    // The wildcard must cover exactly one label.
    const std::string_view label(host.data(), host.size() - suffix.size());
    return !label.empty() && label.find('.') == std::string_view::npos;
  }
  return false;
}

bool CertificateCoversHost(const Certificate& cert, const std::string& host) {
  if (NameMatches(cert.data.subject_cn, host)) return true;
  for (const auto& san : cert.data.sans) {
    if (NameMatches(san, host)) return true;
  }
  return false;
}

}  // namespace tlsharm::pki
