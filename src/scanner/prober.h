// The probe engine — the project's stand-in for the paper's modified
// ZMap/zgrab tool-chain.
//
// A Prober runs single TLS connections against the simulated Internet,
// classifies certificate trust (memoized: the same chain is not re-verified
// every day), and performs resumption attempts with stored session state.
//
// Purity contract: every probe outcome is a pure function of (prober seed,
// domain, scheduled time, probe options). The client DRBG is derived per
// attempt from exactly those inputs — no sequential stream shared between
// probes — so two Probers with the same seed produce identical observations
// no matter how the probes are interleaved across them. This is what lets
// the sharded scan engine split a day across threads and still emit
// byte-identical output (see scan_engine.h).
#pragma once

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "attack/record.h"
#include "crypto/drbg.h"
#include "obs/metrics.h"
#include "pki/root_store.h"
#include "scanner/observation.h"
#include "simnet/internet.h"
#include "tls/client.h"

namespace tlsharm::scanner {

// Retry/backoff policy for transport-level probe failures (refused,
// timeout, reset, malformed). Deliberate server answers — alerts,
// untrusted chains, no-HTTPS — are never retried. Each failed attempt is
// charged virtual time (a refused connect is fast, a timeout costs
// `attempt_timeout`), then the next attempt waits an exponentially growing
// backoff plus deterministic jitter; the probe gives up when attempts or
// the virtual-time budget run out.
struct RetryPolicy {
  int max_attempts = 1;          // total attempts per probe (1 = no retry)
  SimTime base_backoff = 2;      // first retry delay, doubled per attempt
  SimTime max_backoff = 64;      // backoff growth cap
  SimTime attempt_timeout = 10;  // virtual cost of a timed-out attempt
  SimTime budget = 120;          // per-probe virtual-time budget
};

// Which cipher suites a probe offers.
enum class CipherSelection : std::uint8_t {
  kDefault,    // ECDHE > DHE > static
  kDheOnly,
  kEcdheOnly,
  kEcdheAndStatic,  // the paper's "ECDHE and RSA" daily scan
};

struct ProbeOptions {
  CipherSelection ciphers = CipherSelection::kDefault;
  bool offer_session_ticket = true;
  bool want_full_result = false;  // keep ticket/session bytes for resumption
  // Abort after the server's first flight: enough to record the KEX value,
  // certificate and session ID, at roughly a third of the handshake cost.
  // Tickets are NOT observed in this mode (NewSessionTicket comes later).
  bool kex_only = false;
};

// Session state kept by the scanner for resumption probes.
struct StoredSession {
  simnet::DomainId domain = 0;
  Bytes session_id;
  Bytes ticket;
  std::uint32_t ticket_lifetime_hint = 0;
  Bytes master_secret;
  bool valid = false;
};

// One connection attempt inside a probe, for the telemetry trace. All
// fields are virtual time, so the log is as replayable as the probe itself.
struct ProbeAttempt {
  SimTime start = 0;     // when the attempt opened its connection
  SimTime duration = 0;  // virtual time charged (a timeout burns the budget)
  SimTime backoff = 0;   // wait before the NEXT attempt (0 on the last)
  ProbeFailure failure = ProbeFailure::kNone;
};

struct ProbeResult {
  HandshakeObservation observation;
  StoredSession session;  // populated when want_full_result
  // Per-attempt timeline; filled only when attempt logging is enabled
  // (SetAttemptLogging), so the hot path pays nothing by default.
  std::vector<ProbeAttempt> attempt_log;
  // Adversary recordings, one per attempt that opened a connection; filled
  // only when capture recording is enabled (SetCaptureRecording). Each is
  // a pure function of (seed, domain, attempt time, options) like the
  // observation itself, so recordings are thread-count independent.
  std::vector<attack::CaptureRecord> captures;
};

// Cached handles into a MetricsRegistry so the per-probe hot path bumps
// counters without any by-name lookups. Resolved once in SetMetrics.
struct ProberMetricHandles {
  obs::Counter* probes = nullptr;
  obs::Counter* attempts = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* handshakes_ok = nullptr;
  obs::Counter* trusted = nullptr;
  obs::Counter* resume_attempts = nullptr;
  obs::Counter* resume_accepted = nullptr;
  obs::Counter* resume_rejected = nullptr;
  obs::Histogram* backoff_wait = nullptr;       // per-retry wait, seconds
  obs::Histogram* attempts_per_probe = nullptr;
  std::array<obs::Counter*, kProbeFailureClasses> failures{};
};

class Prober {
 public:
  Prober(simnet::Internet& net, std::uint64_t seed);

  // One fresh TLS connection to `domain` at time `now`.
  ProbeResult Probe(simnet::DomainId domain, SimTime now,
                    const ProbeOptions& options = {});

  // Attempts to resume `session` against `domain` (which may differ from
  // the session's origin — the §5.1 cross-domain probe). Returns whether
  // the server accepted the resumption.
  bool TryResume(const StoredSession& session, simnet::DomainId domain,
                 SimTime now);

  // As TryResume but via session ID only / ticket only.
  bool TryResumeId(const StoredSession& session, simnet::DomainId domain,
                   SimTime now);
  bool TryResumeTicket(const StoredSession& session, simnet::DomainId domain,
                       SimTime now);

  // Retries apply to Probe and the TryResume* family alike.
  void SetRetryPolicy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // Attaches a metrics registry (nullptr detaches). The registry is NOT
  // thread-safe: give each concurrently-used Prober its own and merge them
  // afterwards (the sharded engine merges in canonical shard order, which
  // keeps totals thread-count independent because counters add).
  void SetMetrics(obs::MetricsRegistry* registry);
  // Fills ProbeResult::attempt_log on every probe (off by default).
  void SetAttemptLogging(bool enabled) { log_attempts_ = enabled; }
  // Taps every connection through attack::PassiveCapture and fills
  // ProbeResult::captures (off by default; the hot path then never
  // touches the tap).
  void SetCaptureRecording(bool enabled) { record_captures_ = enabled; }
  bool CaptureRecording() const { return record_captures_; }

 private:
  ProbeResult ProbeOnce(simnet::DomainId domain, SimTime now,
                        const ProbeOptions& options);
  bool ChainTrusted(const pki::CertificateChain& chain,
                    const std::string& host, SimTime now);
  // Writes the offered-suite list for `selection` into `out`, reusing its
  // capacity (the hot path never reallocates the vector after warm-up).
  void AssignSuites(CipherSelection selection,
                    std::vector<tls::CipherSuite>* out) const;
  bool RunResume(const StoredSession& session, simnet::DomainId domain,
                 SimTime now, bool offer_id, bool offer_ticket);
  // Deterministic backoff jitter in [0, base_backoff], a pure function of
  // (prober seed, domain, attempt time) so reruns replay exactly.
  SimTime Jitter(simnet::DomainId domain, SimTime when, int attempt) const;
  // The client randomness for one connection attempt, derived from (seed,
  // domain, attempt time, options salt). Attempts of one probe are at
  // least a second apart, so the time distinguishes them; the salt
  // distinguishes same-instant probes with different wire options.
  // Non-const: builds the seed material in drbg_seed_ scratch.
  crypto::Drbg AttemptDrbg(simnet::DomainId domain, SimTime when,
                           std::uint64_t salt);

  simnet::Internet& net_;
  std::uint64_t seed_;
  RetryPolicy retry_;
  obs::MetricsRegistry* metrics_ = nullptr;
  ProberMetricHandles m_{};
  bool log_attempts_ = false;
  bool record_captures_ = false;
  // Reusable per-probe scratch. A probe's client config is semantically a
  // fresh value each time, but its buffers (SNI string, suite vector,
  // resumption byte strings, DRBG seed material) keep their capacity across
  // probes, so the steady-state hot path performs no heap allocation to
  // stage a connection. TlsClient borrows these in place (pointer ctor).
  tls::ClientConfig probe_config_;
  tls::ClientConfig resume_config_;
  Bytes drbg_seed_;
  std::string trust_key_;
  // Memoized chain verification keyed by the full (leaf fingerprint, host)
  // pair — fingerprint bytes, a NUL separator, then the host name — so two
  // distinct pairs can never share a cache slot. Bounded: at the cap the
  // map is cleared and re-warmed (verdicts are pure functions of the key,
  // so eviction affects only speed, never observations). A million-domain
  // population would otherwise grow this without limit.
  std::unordered_map<std::string, bool> trust_cache_;
  // Memoized per-certificate signature checks, shared across hosts: when a
  // new (fingerprint, host) pair presents a chain whose certificates were
  // already verified under another host, the Schnorr exponentiations are
  // skipped. Probers are single-threaded, so no locking.
  pki::SignatureVerifyCache verify_cache_;
};

}  // namespace tlsharm::scanner
