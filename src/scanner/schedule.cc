#include "scanner/schedule.h"

#include <cassert>

#include "util/rng.h"

namespace tlsharm::scanner {

RandomPermutation::RandomPermutation(std::uint64_t n, std::uint64_t seed)
    : n_(n) {
  // n == 0 and n == 1 are degenerate but legal (an empty scan list, a
  // single target); At() short-circuits them so the cycle walk below can
  // assume the domain has at least two elements.
  // Smallest even bit-width domain 2^(2k) >= n, at least 2 bits so the
  // Feistel halves are non-trivial.
  half_bits_ = 1;
  while ((1ULL << (2 * half_bits_)) < n) ++half_bits_;
  half_mask_ = (1ULL << half_bits_) - 1;
  std::uint64_t state = seed;
  for (auto& key : round_keys_) key = SplitMix64(state);
}

std::uint64_t RandomPermutation::Feistel(std::uint64_t x) const {
  std::uint64_t left = x >> half_bits_;
  std::uint64_t right = x & half_mask_;
  for (const std::uint64_t key : round_keys_) {
    std::uint64_t f = right ^ key;
    f = SplitMix64(f) & half_mask_;
    const std::uint64_t new_right = left ^ f;
    left = right;
    right = new_right;
  }
  return (left << half_bits_) | right;
}

std::uint64_t RandomPermutation::At(std::uint64_t i) const {
  assert(i < n_);
  // The cycle walk below never terminates for n < 2 (every Feistel output
  // of a one-element walk can sit outside [0, n) forever when n == 0, and
  // needlessly wanders for n == 1), so answer the degenerate sizes here.
  if (n_ <= 1) return 0;
  // Cycle-walk: a Feistel network permutes the power-of-four domain; keep
  // applying it until the value lands inside [0, n). Expected < 4 steps
  // since the domain is < 4n.
  std::uint64_t x = Feistel(i);
  while (x >= n_) x = Feistel(x);
  return x;
}

void Blacklist::ExcludeDomain(const std::string& name) {
  domains_.insert(name);
}

void Blacklist::ExcludeAs(std::uint32_t as_number) {
  as_numbers_.insert(as_number);
}

bool Blacklist::Excluded(const simnet::DomainInfo& info) const {
  if (as_numbers_.count(info.as_number) != 0) return true;
  return domains_.count(info.name) != 0;
}

bool Blacklist::Excluded(const simnet::Internet& net,
                         simnet::DomainId id) const {
  if (as_numbers_.count(net.DomainAs(id)) != 0) return true;
  if (domains_.empty()) return false;
  // Regenerate the name into reusable scratch; capacity survives across
  // calls so steady state allocates nothing.
  thread_local std::string scratch;
  net.AssignDomainName(id, &scratch);
  return domains_.count(scratch) != 0;
}

std::vector<std::uint8_t> BuildExclusionMask(const simnet::Internet& net,
                                             const Blacklist& blacklist) {
  if (blacklist.RuleCount() == 0) return {};
  std::vector<std::uint8_t> mask(net.DomainCount(), 0);
  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    if (blacklist.Excluded(net, id)) mask[id] = 1;
  }
  return mask;
}

std::vector<simnet::DomainId> CollectScanTargets(
    const simnet::Internet& net, int day, std::uint64_t seed,
    const std::vector<std::uint8_t>* exclusion_mask, bool https_only) {
  const RandomPermutation perm = DayPermutation(net.DomainCount(), seed, day);
  std::vector<simnet::DomainId> targets;
  for (std::uint64_t i = 0; i < perm.Size(); ++i) {
    const auto id = static_cast<simnet::DomainId>(perm.At(i));
    if (!net.InTopListOnDay(id, day)) continue;
    if (exclusion_mask != nullptr && (*exclusion_mask)[id] != 0) continue;
    if (https_only && !net.DomainHttps(id)) continue;
    targets.push_back(id);
  }
  return targets;
}

}  // namespace tlsharm::scanner
