#include "scanner/scan_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/fleet.h"
#include "obs/prof.h"

namespace tlsharm::scanner {
namespace {

// Performance-plane span sites (wall-clock only; see obs/prof.h for the
// isolation contract). Namespace-scope so the disabled hot path pays one
// relaxed load and no static-init guard.
const obs::ProfSite kProfDay("scan.day");
const obs::ProfSite kProfTargets("scan.targets");
const obs::ProfSite kProfShard("scan.shard");
const obs::ProfSite kProfProbeMain("scan.probe.main");
const obs::ProfSite kProfProbeDhe("scan.probe.dhe");
const obs::ProfSite kProfProbeRequeue("scan.probe.requeue");
const obs::ProfSite kProfJoinMain("scan.join.main");
const obs::ProfSite kProfJoinRequeue("scan.join.requeue");
const obs::ProfSite kProfMerge("scan.merge");
const obs::ProfSite kProfStoreAppend("scan.store.append");
const obs::ProfSite kProfCaptureFlush("scan.capture.flush");
const obs::ProfSite kProfCaptureEndDay("scan.capture.endday");
const obs::ProfSite kProfCaptureFinish("scan.capture.finish");
const obs::ProfSite kProfTraceFlush("scan.trace.flush");
const obs::ProfSite kProfStoreEndDay("scan.store.endday");
const obs::ProfSite kProfStoreFinish("scan.store.finish");
const obs::ProfSite kProfFleetCollect("scan.fleet.collect");

// The pair of observations the main pass produces per target.
struct Record {
  HandshakeObservation main;
  HandshakeObservation dhe;
};

// A transport-failed probe awaiting the end-of-pass requeue.
struct PendingProbe {
  simnet::DomainId id = 0;
  bool dhe = false;
  ProbeFailure failure = ProbeFailure::kNone;
};

// Contiguous shard bounds: shard k of `shards` over n items is
// [ShardLo(n, shards, k), ShardLo(n, shards, k + 1)).
std::size_t ShardLo(std::size_t n, int shards, int k) {
  return n * static_cast<std::size_t>(k) / static_cast<std::size_t>(shards);
}

// Stages one trace event per connection attempt of `probe` into the
// shard's buffer. `seq` is the probe's canonical index within the day —
// never the shard — so the flushed stream is thread-count independent.
void StageTrace(obs::ShardedTraceBuffer& buffer, std::size_t shard, int day,
                std::uint64_t seq, std::string_view pass,
                std::string_view kind, simnet::DomainId id, SimTime scheduled,
                const ProbeResult& probe) {
  const std::size_t attempts = probe.attempt_log.size();
  for (std::size_t a = 0; a < attempts; ++a) {
    const ProbeAttempt& att = probe.attempt_log[a];
    obs::ProbeTraceEvent event;
    event.day = day;
    event.seq = seq;
    event.pass = pass;
    event.kind = kind;
    event.domain = id;
    event.scheduled = scheduled;
    event.attempt = static_cast<int>(a) + 1;
    event.start = att.start;
    event.duration = att.duration;
    event.backoff = att.backoff;
    event.failure = ToString(att.failure);
    event.final_attempt = (a + 1 == attempts);
    buffer.Append(shard, event);
  }
}

// Runs body(0) .. body(shards - 1), one worker thread per shard. The
// one-shard case runs inline on the calling thread — the serial path
// allocates no threads at all.
template <typename Body>
void RunSharded(int shards, Body&& body) {
  if (shards <= 1) {
    body(0);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(shards));
  for (int k = 0; k < shards; ++k) {
    workers.emplace_back([&body, k] { body(k); });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace

int ScanThreadsFromEnv() {
  if (const char* env = std::getenv("TLSHARM_THREADS")) {
    const int threads = std::atoi(env);
    if (threads >= 1 && threads <= 64) return threads;
  }
  return 1;
}

std::size_t ScanBatchFromEnv() {
  if (const char* env = std::getenv("TLSHARM_SCAN_BATCH")) {
    const long batch = std::atol(env);
    if (batch >= 1 && batch <= (1L << 24)) {
      return static_cast<std::size_t>(batch);
    }
  }
  return 65536;
}

DailyScanResult RunShardedDailyScans(simnet::Internet& net, int days,
                                     std::uint64_t seed,
                                     const ScanEngineOptions& options) {
  const int max_shards = std::max(1, options.threads);
  const std::size_t batch =
      options.batch_size != 0 ? options.batch_size : ScanBatchFromEnv();
  const bool tracing = options.trace != nullptr;
  const bool hooked = options.hooks != nullptr;
  // Hooks need cumulative snapshots even when the caller passed no
  // registry, so metering is internal whenever either consumer exists.
  const bool metering = options.metrics != nullptr || hooked;

  // Both store backends (legacy text sink + streaming StoreWriter) receive
  // the identical canonical stream; `storing` gates all staging work.
  MultiStoreWriter store;
  store.Add(options.sink);
  store.Add(options.store);
  const bool storing = !store.Empty();
  // The adversary recorder follows the same staging discipline as the
  // store: per-shard buffers, flushed in shard order on the merge thread.
  const bool capturing = options.capture != nullptr;

  // Per-shard metric registries (single-writer, no locks); merged with the
  // engine-level registry into options.metrics in shard order after the
  // last day. Counters add, so the merged totals do not depend on how
  // targets were sharded.
  std::vector<obs::MetricsRegistry> shard_metrics(
      metering ? static_cast<std::size_t>(max_shards) : 0);
  obs::MetricsRegistry engine_metrics;

  // One prober per worker, every one seeded IDENTICALLY: outcomes are pure
  // in (seed, domain, time, options), so it does not matter which worker
  // runs a probe. Only scratch state — trust-cache memoization, retry
  // bookkeeping — is thread-local. Probers persist across days so the
  // memoization keeps paying.
  std::vector<Prober> probers;
  probers.reserve(static_cast<std::size_t>(max_shards));
  for (int k = 0; k < max_shards; ++k) {
    probers.emplace_back(net, seed);
    probers.back().SetRetryPolicy(options.robustness.retry);
    if (metering) {
      probers.back().SetMetrics(&shard_metrics[static_cast<std::size_t>(k)]);
    }
    probers.back().SetAttemptLogging(tracing);
    probers.back().SetCaptureRecording(capturing);
  }

  const Blacklist no_rules;
  const std::vector<std::uint8_t> mask =
      BuildExclusionMask(net, options.blacklist ? *options.blacklist
                                                : no_rules);
  const std::vector<std::uint8_t>* mask_ptr = mask.empty() ? nullptr : &mask;

  // The aggregate state IS the shared fold (scanner/aggregates.h): the
  // engine folds each observation the moment the canonical merge reaches
  // it — suite dispatch inside Fold() reproduces the old main/DHE
  // aggregation exactly (see the aggregates.h header proof). A resumed
  // campaign restores the committed prefix instead of rescanning it.
  ScanAggregates agg;
  std::vector<DayLoss> loss;
  obs::MetricsSnapshot resumed_metrics;
  bool have_resumed_metrics = false;
  const int start_day = std::max(0, options.start_day);
  if (options.resume != nullptr) {
    agg = options.resume->aggregates;
    loss = options.resume->loss;
    if (metering && !options.resume->metrics_json.empty()) {
      have_resumed_metrics =
          obs::ParseSnapshot(options.resume->metrics_json, resumed_metrics);
    }
  }

  // Cumulative scan-metrics snapshot through the current day: resumed base
  // + engine counters + every shard registry. Merging is commutative, so
  // the rendered bytes are identical at any thread count.
  const auto cumulative_metrics_json = [&]() {
    obs::MetricsRegistry scratch;
    if (have_resumed_metrics) scratch.MergeFrom(resumed_metrics);
    scratch.MergeFrom(engine_metrics);
    for (const obs::MetricsRegistry& shard : shard_metrics) {
      scratch.MergeFrom(shard);
    }
    return scratch.SnapshotJson();
  };

  ProbeOptions main_options;
  main_options.ciphers = CipherSelection::kEcdheAndStatic;
  ProbeOptions dhe_options;
  dhe_options.ciphers = CipherSelection::kDheOnly;
  dhe_options.kex_only = true;  // only the DHE value matters here

  if (obs::ProfilingEnabled()) obs::ProfSetThreadTrack(0, "main");

  bool aborted = false;
  std::uint64_t total_probes = 0;
  for (int day = start_day; day < days && !aborted; ++day) {
    obs::ProfScope day_span(kProfDay);
    if (hooked && !options.hooks->OnDayStarted(day)) {
      aborted = true;
      break;
    }
    const SimTime when = ScanDayStart(day);
    const std::vector<simnet::DomainId> targets = [&] {
      obs::ProfScope span(kProfTargets);
      return CollectScanTargets(net, day, seed, mask_ptr,
                                /*https_only=*/true);
    }();
    const std::size_t n = targets.size();

    // --- main pass: batched — shard, probe, flush, fold per batch --------
    // Staging state (probe records, observation/capture/trace buffers) is
    // sized by the batch, never the day: a million-target day peaks at
    // O(batch_size) scan-engine memory. Batches walk the target list in
    // canonical order and each flush drains complete batches in shard
    // order, so the concatenated stream — and therefore every downstream
    // byte — is identical to the unbatched engine's.
    DayLoss day_loss;
    std::vector<PendingProbe> pending;
    std::vector<Record> records(
        std::min(batch, std::max<std::size_t>(n, 1)));
    ShardedObservationBuffer staged(static_cast<std::size_t>(max_shards));
    ShardedCaptureBuffer capture_staged(static_cast<std::size_t>(max_shards));
    obs::ShardedTraceBuffer trace_staged(static_cast<std::size_t>(max_shards));
    std::uint64_t day_captures = 0;
    for (std::size_t lo = 0; lo < n; lo += batch) {
      const std::size_t batch_hi = std::min(n, lo + batch);
      const std::size_t bn = batch_hi - lo;
      const int shards = static_cast<int>(
          std::min<std::size_t>(static_cast<std::size_t>(max_shards), bn));
      // Shard utilization accounting (performance plane only): each worker
      // times its own loop; the merge thread turns the difference against
      // the barrier wall time into per-shard merge-stall.
      std::vector<std::uint64_t> shard_busy_ns(
          static_cast<std::size_t>(shards), 0);
      const std::uint64_t main_join_start =
          obs::ProfilingEnabled() ? obs::ProfNowNs() : 0;
      {
        obs::ProfScope join_span(kProfJoinMain);
        RunSharded(shards, [&](int k) {
          const bool prof = obs::ProfilingEnabled();
          std::uint64_t busy_start = 0;
          if (prof) {
            if (shards > 1) {
              char tname[24];
              std::snprintf(tname, sizeof(tname), "shard-%d", k);
              obs::ProfSetThreadTrack(k + 1, tname);
            }
            busy_start = obs::ProfNowNs();
          }
          {
            obs::ProfScope shard_span(kProfShard);
            Prober& prober = probers[static_cast<std::size_t>(k)];
            const std::size_t hi = ShardLo(bn, shards, k + 1);
            for (std::size_t b = ShardLo(bn, shards, k); b < hi; ++b) {
              // `i` is the target's canonical index within the DAY — trace
              // seqs must not depend on how the day was batched.
              const std::size_t i = lo + b;
              const simnet::DomainId id = targets[i];
              Record& record = records[b];
              ProbeResult main_probe = [&] {
                obs::ProfScope span(kProfProbeMain);
                return prober.Probe(id, when, main_options);
              }();
              record.main = main_probe.observation;
              ProbeResult dhe_probe = [&] {
                obs::ProfScope span(kProfProbeDhe);
                return prober.Probe(id, when + kHour, dhe_options);
              }();
              record.dhe = dhe_probe.observation;
              if (tracing) {
                StageTrace(trace_staged, static_cast<std::size_t>(k), day,
                           2 * i, "main", "main", id, when, main_probe);
                StageTrace(trace_staged, static_cast<std::size_t>(k), day,
                           2 * i + 1, "main", "dhe", id, when + kHour,
                           dhe_probe);
              }
              if (storing) {
                staged.Append(static_cast<std::size_t>(k), day, record.main);
                staged.Append(static_cast<std::size_t>(k), day, record.dhe);
              }
              if (capturing) {
                // Canonical capture order matches the observation stream:
                // the main probe's attempts, then the DHE probe's.
                for (attack::CaptureRecord& rec : main_probe.captures) {
                  capture_staged.Append(static_cast<std::size_t>(k), day,
                                        std::move(rec));
                }
                for (attack::CaptureRecord& rec : dhe_probe.captures) {
                  capture_staged.Append(static_cast<std::size_t>(k), day,
                                        std::move(rec));
                }
              }
            }
          }
          if (prof) {
            shard_busy_ns[static_cast<std::size_t>(k)] =
                obs::ProfNowNs() - busy_start;
          }
        });
      }
      if (obs::ProfilingEnabled()) {
        const std::uint64_t join_wall = obs::ProfNowNs() - main_join_start;
        for (int k = 0; k < shards; ++k) {
          const std::uint64_t busy =
              shard_busy_ns[static_cast<std::size_t>(k)];
          obs::ProfRecordShardStall(shards > 1 ? k + 1 : 0, busy,
                                    join_wall > busy ? join_wall - busy : 0);
        }
      }
      if (storing) {
        obs::ProfScope span(kProfStoreAppend);
        staged.Flush(store);
      }
      if (capturing) {
        obs::ProfScope span(kProfCaptureFlush);
        day_captures += capture_staged.Flush(*options.capture);
      }
      if (tracing) {
        obs::ProfScope span(kProfTraceFlush);
        trace_staged.Flush(*options.trace);
      }

      // --- canonical merge: aggregate + collect the requeue list ---------
      // Runs per batch on the merge thread, in day order, so the fold and
      // the requeue list are the same as the unbatched engine's. The
      // requeue tail is the one day-scale buffer left: it is bounded by
      // the day's transport failures, not its population.
      {
        obs::ProfScope merge_span(kProfMerge);
        for (std::size_t b = 0; b < bn; ++b) {
          const std::size_t i = lo + b;
          day_loss.scheduled += 2;
          agg.Fold(day, records[b].main);
          if (IsTransportFailure(records[b].main.failure)) {
            pending.push_back({targets[i], false, records[b].main.failure});
          }
          agg.Fold(day, records[b].dhe);
          if (IsTransportFailure(records[b].dhe.failure)) {
            pending.push_back({targets[i], true, records[b].dhe.failure});
          }
        }
      }
    }

    // --- requeue pass: one more scan for the transport-failed tail -------
    const std::size_t pending_count = pending.size();
    std::vector<HandshakeObservation> requeued(pending_count);
    if (options.robustness.requeue_failures && pending_count > 0) {
      const SimTime again = when + options.robustness.requeue_delay;
      const int requeue_shards = static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(max_shards), pending_count));
      ShardedObservationBuffer requeue_staged(
          static_cast<std::size_t>(requeue_shards));
      ShardedCaptureBuffer requeue_captures(
          static_cast<std::size_t>(requeue_shards));
      obs::ShardedTraceBuffer requeue_trace(
          static_cast<std::size_t>(requeue_shards));
      {
        obs::ProfScope join_span(kProfJoinRequeue);
        RunSharded(requeue_shards, [&](int k) {
          if (obs::ProfilingEnabled() && requeue_shards > 1) {
            char tname[24];
            std::snprintf(tname, sizeof(tname), "shard-%d", k);
            obs::ProfSetThreadTrack(k + 1, tname);
          }
          obs::ProfScope shard_span(kProfShard);
          Prober& prober = probers[static_cast<std::size_t>(k)];
          const std::size_t hi =
              ShardLo(pending_count, requeue_shards, k + 1);
          for (std::size_t i = ShardLo(pending_count, requeue_shards, k);
               i < hi; ++i) {
            const PendingProbe& p = pending[i];
            const SimTime at = p.dhe ? again + kHour : again;
            ProbeResult probe = [&] {
              obs::ProfScope span(kProfProbeRequeue);
              return prober.Probe(p.id, at,
                                  p.dhe ? dhe_options : main_options);
            }();
            requeued[i] = probe.observation;
            if (tracing) {
              // Requeue seqs continue after the day's 2n main-pass probes.
              StageTrace(requeue_trace, static_cast<std::size_t>(k), day,
                         2 * n + i, "requeue", p.dhe ? "dhe" : "main", p.id,
                         at, probe);
            }
            if (storing) {
              requeue_staged.Append(static_cast<std::size_t>(k), day,
                                    requeued[i]);
            }
            if (capturing) {
              for (attack::CaptureRecord& rec : probe.captures) {
                requeue_captures.Append(static_cast<std::size_t>(k), day,
                                        std::move(rec));
              }
            }
          }
        });
      }
      if (storing) {
        obs::ProfScope span(kProfStoreAppend);
        requeue_staged.Flush(store);
      }
      if (capturing) {
        obs::ProfScope span(kProfCaptureFlush);
        day_captures += requeue_captures.Flush(*options.capture);
      }
      if (tracing) {
        obs::ProfScope span(kProfTraceFlush);
        requeue_trace.Flush(*options.trace);
      }
    }
    // The day's last observation has been appended: let streaming backends
    // flush (the warehouse closes the day's columnar segment here).
    if (storing) {
      obs::ProfScope span(kProfStoreEndDay);
      store.EndDay(day);
    }
    // Same boundary for the capture tape: its day segment commits here, on
    // the merge thread, before the campaign's commit hooks observe the day.
    if (capturing) {
      obs::ProfScope span(kProfCaptureEndDay);
      options.capture->EndDay(day);
    }
    for (std::size_t i = 0; i < pending_count; ++i) {
      ProbeFailure failure = pending[i].failure;
      if (options.robustness.requeue_failures) {
        agg.Fold(day, requeued[i]);
        failure = requeued[i].failure;
      }
      if (IsTransportFailure(failure)) {
        ++day_loss.lost;
        ++day_loss.lost_by_class[static_cast<std::size_t>(failure)];
      } else {
        ++day_loss.recovered;
      }
    }
    loss.push_back(day_loss);

    // Engine-level counters, bumped on the merge thread only (canonical
    // order; no shard involvement, so trivially thread-count independent).
    if (metering) {
      obs::MetricsRegistry& reg = engine_metrics;
      reg.GetCounter("scan.days").Add(1);
      reg.GetCounter("scan.targets").Add(n);
      reg.GetCounter("scan.probes.scheduled").Add(day_loss.scheduled);
      reg.GetCounter("scan.requeue.pending").Add(pending_count);
      reg.GetHistogram("scan.requeue.depth", {0, 10, 100, 1000, 10000})
          .Observe(static_cast<std::int64_t>(pending_count));
      reg.GetCounter("scan.lost").Add(day_loss.lost);
      reg.GetCounter("scan.recovered").Add(day_loss.recovered);
      if (capturing) {
        reg.GetCounter("scan.capture.records").Add(day_captures);
      }
      for (int c = 0; c < kProbeFailureClasses; ++c) {
        const std::size_t lost =
            day_loss.lost_by_class[static_cast<std::size_t>(c)];
        if (lost == 0) continue;
        std::string name = "scan.lost.";
        name += ToString(static_cast<ProbeFailure>(c));
        reg.GetCounter(name).Add(lost);
      }
    }

    agg.CompleteDay(day);
    if (hooked &&
        !options.hooks->OnDayCommitted(day, agg, loss,
                                       cumulative_metrics_json())) {
      aborted = true;
    }

    if (options.progress) {
      const std::uint64_t day_probes =
          static_cast<std::uint64_t>(day_loss.scheduled) +
          (options.robustness.requeue_failures
               ? static_cast<std::uint64_t>(pending_count)
               : 0);
      total_probes += day_probes;
      ScanProgress p;
      p.day = day;
      p.days = days;
      p.targets = n;
      p.day_probes = day_probes;
      p.total_probes = total_probes;
      options.progress(p);
    }
  }

  if (storing) {
    obs::ProfScope span(kProfStoreFinish);
    store.Finish();
  }
  if (capturing) {
    obs::ProfScope span(kProfCaptureFinish);
    options.capture->Finish();
  }

  DailyScanResult result = agg.Finish(net);
  result.loss = std::move(loss);

  if (options.metrics != nullptr) {
    // Canonical order — resumed base, engine counters, then each shard;
    // merging is commutative anyway (counters and histogram buckets add),
    // so the totals cannot depend on sharding or on where a resume split
    // the study.
    if (have_resumed_metrics) options.metrics->MergeFrom(resumed_metrics);
    options.metrics->MergeFrom(engine_metrics);
    for (const obs::MetricsRegistry& shard : shard_metrics) {
      options.metrics->MergeFrom(shard);
    }
    obs::ProfScope span(kProfFleetCollect);
    obs::CollectFleetMetrics(net, ScanDayStart(days), *options.metrics);
  }
  return result;
}

}  // namespace tlsharm::scanner
