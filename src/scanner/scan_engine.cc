#include "scanner/scan_engine.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/fleet.h"

namespace tlsharm::scanner {
namespace {

// The pair of observations the main pass produces per target.
struct Record {
  HandshakeObservation main;
  HandshakeObservation dhe;
};

// A transport-failed probe awaiting the end-of-pass requeue.
struct PendingProbe {
  simnet::DomainId id = 0;
  bool dhe = false;
  ProbeFailure failure = ProbeFailure::kNone;
};

// Contiguous shard bounds: shard k of `shards` over n items is
// [ShardLo(n, shards, k), ShardLo(n, shards, k + 1)).
std::size_t ShardLo(std::size_t n, int shards, int k) {
  return n * static_cast<std::size_t>(k) / static_cast<std::size_t>(shards);
}

// Stages one trace event per connection attempt of `probe` into the
// shard's buffer. `seq` is the probe's canonical index within the day —
// never the shard — so the flushed stream is thread-count independent.
void StageTrace(obs::ShardedTraceBuffer& buffer, std::size_t shard, int day,
                std::uint64_t seq, std::string_view pass,
                std::string_view kind, simnet::DomainId id, SimTime scheduled,
                const ProbeResult& probe) {
  const std::size_t attempts = probe.attempt_log.size();
  for (std::size_t a = 0; a < attempts; ++a) {
    const ProbeAttempt& att = probe.attempt_log[a];
    obs::ProbeTraceEvent event;
    event.day = day;
    event.seq = seq;
    event.pass = pass;
    event.kind = kind;
    event.domain = id;
    event.scheduled = scheduled;
    event.attempt = static_cast<int>(a) + 1;
    event.start = att.start;
    event.duration = att.duration;
    event.backoff = att.backoff;
    event.failure = ToString(att.failure);
    event.final_attempt = (a + 1 == attempts);
    buffer.Append(shard, event);
  }
}

// Runs body(0) .. body(shards - 1), one worker thread per shard. The
// one-shard case runs inline on the calling thread — the serial path
// allocates no threads at all.
template <typename Body>
void RunSharded(int shards, Body&& body) {
  if (shards <= 1) {
    body(0);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(shards));
  for (int k = 0; k < shards; ++k) {
    workers.emplace_back([&body, k] { body(k); });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace

int ScanThreadsFromEnv() {
  if (const char* env = std::getenv("TLSHARM_THREADS")) {
    const int threads = std::atoi(env);
    if (threads >= 1 && threads <= 64) return threads;
  }
  return 1;
}

DailyScanResult RunShardedDailyScans(simnet::Internet& net, int days,
                                     std::uint64_t seed,
                                     const ScanEngineOptions& options) {
  const int max_shards = std::max(1, options.threads);
  const bool tracing = options.trace != nullptr;

  // Both store backends (legacy text sink + streaming StoreWriter) receive
  // the identical canonical stream; `storing` gates all staging work.
  MultiStoreWriter store;
  store.Add(options.sink);
  store.Add(options.store);
  const bool storing = !store.Empty();

  // Per-shard metric registries (single-writer, no locks); merged into
  // options.metrics in shard order after the last day. Counters add, so
  // the merged totals do not depend on how targets were sharded.
  std::vector<obs::MetricsRegistry> shard_metrics(
      options.metrics != nullptr ? static_cast<std::size_t>(max_shards) : 0);

  // One prober per worker, every one seeded IDENTICALLY: outcomes are pure
  // in (seed, domain, time, options), so it does not matter which worker
  // runs a probe. Only scratch state — trust-cache memoization, retry
  // bookkeeping — is thread-local. Probers persist across days so the
  // memoization keeps paying.
  std::vector<Prober> probers;
  probers.reserve(static_cast<std::size_t>(max_shards));
  for (int k = 0; k < max_shards; ++k) {
    probers.emplace_back(net, seed);
    probers.back().SetRetryPolicy(options.robustness.retry);
    if (options.metrics != nullptr) {
      probers.back().SetMetrics(&shard_metrics[static_cast<std::size_t>(k)]);
    }
    probers.back().SetAttemptLogging(tracing);
  }

  const Blacklist no_rules;
  const std::vector<std::uint8_t> mask =
      BuildExclusionMask(net, options.blacklist ? *options.blacklist
                                                : no_rules);
  const std::vector<std::uint8_t>* mask_ptr = mask.empty() ? nullptr : &mask;

  DailyScanResult result;
  std::vector<std::uint8_t> ever_ticket(net.DomainCount(), 0);
  std::vector<std::uint8_t> ever_ecdhe(net.DomainCount(), 0);
  std::vector<std::uint8_t> ever_dhe(net.DomainCount(), 0);
  std::vector<std::uint8_t> ever_trusted(net.DomainCount(), 0);

  ProbeOptions main_options;
  main_options.ciphers = CipherSelection::kEcdheAndStatic;
  ProbeOptions dhe_options;
  dhe_options.ciphers = CipherSelection::kDheOnly;
  dhe_options.kex_only = true;  // only the DHE value matters here

  // Aggregation runs on the merge thread only, in canonical order.
  const auto aggregate_main = [&](const HandshakeObservation& obs, int day) {
    if (!obs.handshake_ok) return;
    if (obs.trusted) ever_trusted[obs.domain] = 1;
    if (obs.ticket_issued) {
      ever_ticket[obs.domain] = 1;
      result.stek_spans.Observe(obs.domain, obs.stek_id, day);
    }
    if (obs.suite == tls::CipherSuite::kEcdheWithAes128CbcSha256 &&
        obs.kex_value != kNoSecret) {
      ever_ecdhe[obs.domain] = 1;
      result.ecdhe_spans.Observe(obs.domain, obs.kex_value, day);
    }
  };
  const auto aggregate_dhe = [&](const HandshakeObservation& obs, int day) {
    if (obs.handshake_ok && obs.kex_value != kNoSecret) {
      ever_dhe[obs.domain] = 1;
      result.dhe_spans.Observe(obs.domain, obs.kex_value, day);
    }
  };

  for (int day = 0; day < days; ++day) {
    const SimTime when = ScanDayStart(day);
    const std::vector<simnet::DomainId> targets =
        CollectScanTargets(net, day, seed, mask_ptr, /*https_only=*/true);
    const std::size_t n = targets.size();
    const int shards = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(max_shards), std::max<std::size_t>(n, 1)));

    // --- main pass: shard the target list, probe into per-index slots ----
    std::vector<Record> records(n);
    ShardedObservationBuffer staged(static_cast<std::size_t>(shards));
    obs::ShardedTraceBuffer trace_staged(static_cast<std::size_t>(shards));
    RunSharded(shards, [&](int k) {
      Prober& prober = probers[static_cast<std::size_t>(k)];
      const std::size_t hi = ShardLo(n, shards, k + 1);
      for (std::size_t i = ShardLo(n, shards, k); i < hi; ++i) {
        const simnet::DomainId id = targets[i];
        Record& record = records[i];
        const ProbeResult main_probe = prober.Probe(id, when, main_options);
        record.main = main_probe.observation;
        const ProbeResult dhe_probe =
            prober.Probe(id, when + kHour, dhe_options);
        record.dhe = dhe_probe.observation;
        if (tracing) {
          StageTrace(trace_staged, static_cast<std::size_t>(k), day, 2 * i,
                     "main", "main", id, when, main_probe);
          StageTrace(trace_staged, static_cast<std::size_t>(k), day,
                     2 * i + 1, "main", "dhe", id, when + kHour, dhe_probe);
        }
        if (storing) {
          staged.Append(static_cast<std::size_t>(k), day, record.main);
          staged.Append(static_cast<std::size_t>(k), day, record.dhe);
        }
      }
    });
    if (storing) staged.Flush(store);
    if (tracing) trace_staged.Flush(*options.trace);

    // --- canonical merge: aggregate + collect the requeue list -----------
    DayLoss day_loss;
    std::vector<PendingProbe> pending;
    for (std::size_t i = 0; i < n; ++i) {
      day_loss.scheduled += 2;
      aggregate_main(records[i].main, day);
      if (IsTransportFailure(records[i].main.failure)) {
        pending.push_back({targets[i], false, records[i].main.failure});
      }
      aggregate_dhe(records[i].dhe, day);
      if (IsTransportFailure(records[i].dhe.failure)) {
        pending.push_back({targets[i], true, records[i].dhe.failure});
      }
    }

    // --- requeue pass: one more scan for the transport-failed tail -------
    const std::size_t pending_count = pending.size();
    std::vector<HandshakeObservation> requeued(pending_count);
    if (options.robustness.requeue_failures && pending_count > 0) {
      const SimTime again = when + options.robustness.requeue_delay;
      const int requeue_shards = static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(max_shards), pending_count));
      ShardedObservationBuffer requeue_staged(
          static_cast<std::size_t>(requeue_shards));
      obs::ShardedTraceBuffer requeue_trace(
          static_cast<std::size_t>(requeue_shards));
      RunSharded(requeue_shards, [&](int k) {
        Prober& prober = probers[static_cast<std::size_t>(k)];
        const std::size_t hi = ShardLo(pending_count, requeue_shards, k + 1);
        for (std::size_t i = ShardLo(pending_count, requeue_shards, k);
             i < hi; ++i) {
          const PendingProbe& p = pending[i];
          const SimTime at = p.dhe ? again + kHour : again;
          const ProbeResult probe =
              prober.Probe(p.id, at, p.dhe ? dhe_options : main_options);
          requeued[i] = probe.observation;
          if (tracing) {
            // Requeue seqs continue after the day's 2n main-pass probes.
            StageTrace(requeue_trace, static_cast<std::size_t>(k), day,
                       2 * n + i, "requeue", p.dhe ? "dhe" : "main", p.id,
                       at, probe);
          }
          if (storing) {
            requeue_staged.Append(static_cast<std::size_t>(k), day,
                                  requeued[i]);
          }
        }
      });
      if (storing) requeue_staged.Flush(store);
      if (tracing) requeue_trace.Flush(*options.trace);
    }
    // The day's last observation has been appended: let streaming backends
    // flush (the warehouse closes the day's columnar segment here).
    if (storing) store.EndDay(day);
    for (std::size_t i = 0; i < pending_count; ++i) {
      ProbeFailure failure = pending[i].failure;
      if (options.robustness.requeue_failures) {
        if (pending[i].dhe) {
          aggregate_dhe(requeued[i], day);
        } else {
          aggregate_main(requeued[i], day);
        }
        failure = requeued[i].failure;
      }
      if (IsTransportFailure(failure)) {
        ++day_loss.lost;
        ++day_loss.lost_by_class[static_cast<std::size_t>(failure)];
      } else {
        ++day_loss.recovered;
      }
    }
    result.loss.push_back(day_loss);

    // Engine-level counters, bumped on the merge thread only (canonical
    // order; no shard involvement, so trivially thread-count independent).
    if (options.metrics != nullptr) {
      obs::MetricsRegistry& reg = *options.metrics;
      reg.GetCounter("scan.days").Add(1);
      reg.GetCounter("scan.targets").Add(n);
      reg.GetCounter("scan.probes.scheduled").Add(day_loss.scheduled);
      reg.GetCounter("scan.requeue.pending").Add(pending_count);
      reg.GetHistogram("scan.requeue.depth", {0, 10, 100, 1000, 10000})
          .Observe(static_cast<std::int64_t>(pending_count));
      reg.GetCounter("scan.lost").Add(day_loss.lost);
      reg.GetCounter("scan.recovered").Add(day_loss.recovered);
      for (int c = 0; c < kProbeFailureClasses; ++c) {
        const std::size_t lost =
            day_loss.lost_by_class[static_cast<std::size_t>(c)];
        if (lost == 0) continue;
        std::string name = "scan.lost.";
        name += ToString(static_cast<ProbeFailure>(c));
        reg.GetCounter(name).Add(lost);
      }
    }
  }

  if (storing) store.Finish();

  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    const auto& info = net.GetDomain(id);
    if (!info.stable || !info.https || !ever_trusted[id]) continue;
    result.core_domains.push_back(id);
    result.core_ever_ticket += ever_ticket[id];
    result.core_ever_ecdhe += ever_ecdhe[id];
    result.core_ever_dhe_connect += ever_dhe[id];
    if (ever_ticket[id] || ever_ecdhe[id] || ever_dhe[id]) {
      ++result.core_any_mechanism;
    }
  }

  if (options.metrics != nullptr) {
    // Canonical shard order; merging is commutative anyway (counters and
    // histogram buckets add), so the totals cannot depend on sharding.
    for (const obs::MetricsRegistry& shard : shard_metrics) {
      options.metrics->MergeFrom(shard);
    }
    obs::CollectFleetMetrics(net, ScanDayStart(days), *options.metrics);
  }
  return result;
}

}  // namespace tlsharm::scanner
