#include "scanner/runlog.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/crc32.h"
#include "util/durable.h"

namespace tlsharm::scanner {
namespace {

enum RecordType : std::uint8_t {
  kRecConfig = 1,
  kRecDayStarted = 2,
  kRecDayCommitted = 3,
};

void AppendRecord(Bytes& out, std::uint8_t type, const Bytes& body) {
  const std::size_t start = out.size();
  out.push_back(type);
  AppendVarint(out, body.size());
  out.insert(out.end(), body.begin(), body.end());
  const std::uint32_t crc =
      Crc32(ByteView(out.data() + start, out.size() - start));
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(crc >> shift));
  }
}

bool ReadWholeFile(const std::string& path, Bytes* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream content;
  content << in.rdbuf();
  const std::string data = content.str();
  out->assign(data.begin(), data.end());
  return true;
}

// Campaigns are bounded; a journal claiming a 100k-day study is corrupt.
constexpr std::uint64_t kMaxDays = 100000;

// Bounds-checked big-endian read that advances `off` (util's ReadUint is
// precondition-based and stationary).
bool ReadBE(ByteView b, std::size_t& off, int width, std::uint64_t& out) {
  if (b.size() - off < static_cast<std::size_t>(width)) return false;
  out = ReadUint(b, off, width);
  off += static_cast<std::size_t>(width);
  return true;
}

bool ReadBE32(ByteView b, std::size_t& off, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!ReadBE(b, off, 4, v)) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

}  // namespace

Bytes EncodeRunLog(const RunLogContents& contents) {
  Bytes out;
  out.insert(out.end(), kRunLogMagic, kRunLogMagic + 4);
  out.push_back(kRunLogVersion);
  {
    Bytes body;
    AppendUint(body, contents.config_digest, 8);
    AppendVarint(body, static_cast<std::uint64_t>(contents.days));
    AppendRecord(out, kRecConfig, body);
  }
  for (const RunLogDay& day : contents.committed) {
    {
      Bytes body;
      AppendVarint(body, static_cast<std::uint64_t>(day.day));
      AppendRecord(out, kRecDayStarted, body);
    }
    Bytes body;
    AppendVarint(body, static_cast<std::uint64_t>(day.day));
    AppendVarint(body, day.digests.store_bytes);
    AppendUint(body, day.digests.store_crc, 4);
    AppendVarint(body, day.digests.warehouse_rows);
    AppendVarint(body, day.digests.warehouse_segments);
    AppendUint(body, day.digests.manifest_crc, 4);
    AppendVarint(body, day.digests.state_bytes);
    AppendUint(body, day.digests.state_crc, 4);
    AppendRecord(out, kRecDayCommitted, body);
  }
  if (contents.started >= 0) {
    Bytes body;
    AppendVarint(body, static_cast<std::uint64_t>(contents.started));
    AppendRecord(out, kRecDayStarted, body);
  }
  return out;
}

bool DecodeRunLog(ByteView bytes, RunLogContents* out, std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (bytes.size() < 5) return fail("runlog shorter than header");
  if (!std::equal(kRunLogMagic, kRunLogMagic + 4, bytes.begin())) {
    return fail("bad runlog magic");
  }
  if (bytes[4] != kRunLogVersion) return fail("unsupported runlog version");

  RunLogContents parsed;
  bool have_config = false;
  std::size_t off = 5;
  while (off < bytes.size()) {
    // Each record must decode whole and pass its CRC; anything less is a
    // torn tail — keep the prefix, note the damage, stop.
    const std::size_t rec_start = off;
    std::size_t cur = off;
    const std::uint8_t type = bytes[cur++];
    std::uint64_t len = 0;
    if (!ReadVarint(bytes, cur, len) || bytes.size() - cur < len + 4) {
      parsed.truncated_tail = true;
      break;
    }
    const ByteView body(bytes.data() + cur, static_cast<std::size_t>(len));
    cur += static_cast<std::size_t>(len);
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i) stored = (stored << 8) | bytes[cur + i];
    cur += 4;
    if (Crc32(ByteView(bytes.data() + rec_start, cur - 4 - rec_start)) !=
        stored) {
      parsed.truncated_tail = true;
      break;
    }

    // Record integrity proven; now its structure and placement must hold
    // exactly — a well-formed record in the wrong order is corruption, not
    // a torn write.
    std::size_t boff = 0;
    if (type == kRecConfig) {
      if (have_config) return fail("duplicate config record");
      std::uint64_t digest = 0, days = 0;
      if (!ReadBE(body, boff, 8, digest) || !ReadVarint(body, boff, days) ||
          boff != body.size() || days == 0 || days > kMaxDays) {
        return fail("malformed config record");
      }
      parsed.config_digest = digest;
      parsed.days = static_cast<int>(days);
      have_config = true;
    } else if (type == kRecDayStarted) {
      if (!have_config) return fail("day-started before config");
      if (parsed.started >= 0) return fail("overlapping day-started records");
      std::uint64_t day = 0;
      if (!ReadVarint(body, boff, day) || boff != body.size() ||
          day > kMaxDays) {
        return fail("malformed day-started record");
      }
      if (static_cast<int>(day) != parsed.LastCommitted() + 1) {
        return fail("non-contiguous day-started record");
      }
      parsed.started = static_cast<int>(day);
    } else if (type == kRecDayCommitted) {
      if (!have_config) return fail("day-committed before config");
      std::uint64_t day = 0;
      RunLogDay rec;
      if (!ReadVarint(body, boff, day) ||
          !ReadVarint(body, boff, rec.digests.store_bytes) ||
          !ReadBE32(body, boff, rec.digests.store_crc) ||
          !ReadVarint(body, boff, rec.digests.warehouse_rows) ||
          !ReadVarint(body, boff, rec.digests.warehouse_segments) ||
          !ReadBE32(body, boff, rec.digests.manifest_crc) ||
          !ReadVarint(body, boff, rec.digests.state_bytes) ||
          !ReadBE32(body, boff, rec.digests.state_crc) ||
          boff != body.size() || day > kMaxDays) {
        return fail("malformed day-committed record");
      }
      rec.day = static_cast<int>(day);
      if (parsed.started != rec.day) {
        return fail("day-committed without matching day-started");
      }
      parsed.started = -1;
      parsed.committed.push_back(rec);
    } else {
      return fail("unknown runlog record type");
    }
    off = cur;
  }
  if (!have_config) return fail("runlog missing config record");
  *out = std::move(parsed);
  return true;
}

bool RunLog::Start(const std::string& path, std::uint64_t config_digest,
                   int days, std::string* error) {
  path_ = path;
  contents_ = RunLogContents{};
  contents_.config_digest = config_digest;
  contents_.days = days;
  return Rewrite(error);
}

bool RunLog::Load(const std::string& path, RunLogContents* out,
                  std::string* error) {
  Bytes bytes;
  if (!ReadWholeFile(path, &bytes)) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  if (!DecodeRunLog(bytes, out, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

bool RunLog::Reopen(const std::string& path, const RunLogContents& contents,
                    std::string* error) {
  path_ = path;
  contents_ = contents;
  // Canonical form: an in-flight day is re-announced by the resumed run's
  // own DayStarted, and a torn tail must not survive the rewrite.
  contents_.started = -1;
  contents_.truncated_tail = false;
  return Rewrite(error);
}

bool RunLog::DayStarted(int day, std::string* error) {
  if (day != contents_.LastCommitted() + 1 || contents_.started >= 0) {
    if (error != nullptr) {
      *error = "runlog: day-started " + std::to_string(day) +
               " out of sequence";
    }
    return false;
  }
  contents_.started = day;
  return Rewrite(error);
}

bool RunLog::DayCommitted(int day, const DayDigests& digests,
                          std::string* error) {
  if (contents_.started != day) {
    if (error != nullptr) {
      *error = "runlog: day-committed " + std::to_string(day) +
               " without day-started";
    }
    return false;
  }
  contents_.started = -1;
  contents_.committed.push_back(RunLogDay{day, digests});
  return Rewrite(error);
}

bool RunLog::Rewrite(std::string* error) {
  return DurableWriteFile(path_, EncodeRunLog(contents_), error);
}

}  // namespace tlsharm::scanner
