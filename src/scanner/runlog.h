// The campaign run journal: a write-ahead log that makes a multi-day scan
// campaign restartable after a fail-stop crash at any instant.
//
// The journal records the campaign's identity and per-day progress:
//
//   config        campaign config digest + study length, written once when
//                 the campaign starts. Resume refuses a digest mismatch —
//                 a journal must never splice two different studies.
//   day-started   written BEFORE any of the day's output reaches a store
//                 backend. On recovery, every artifact beyond the last
//                 committed day is presumed partial and discarded.
//   day-committed written AFTER the day's store/warehouse/state barriers:
//                 carries the committed text-store length + CRC, warehouse
//                 row count / segment count / MANIFEST CRC, and the state
//                 checkpoint's size + CRC. Recovery truncates and verifies
//                 each artifact against exactly these digests.
//
// On-disk format: "TLRJ" | version byte, then records of
//   type u8 | body_length varint | body | CRC-32 (4B BE over type+len+body)
//
// Every journal update rewrites the whole file via the atomic
// temp+fsync+rename+dir-fsync discipline (util/durable.h) — the journal is
// a few records per scanned day, so a rewrite is cheap and the file on
// disk is always one complete, self-consistent prefix of the campaign's
// history. The loader additionally tolerates a valid prefix followed by
// garbage (truncated_tail), falling back to the last good record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace tlsharm::scanner {

inline constexpr char kRunLogMagic[4] = {'T', 'L', 'R', 'J'};
inline constexpr std::uint8_t kRunLogVersion = 1;

// What a day-committed record certifies about the artifacts on disk.
struct DayDigests {
  std::uint64_t store_bytes = 0;       // committed text-store prefix length
  std::uint32_t store_crc = 0;         // CRC-32 of that prefix
  std::uint64_t warehouse_rows = 0;    // rows across committed segments
  std::uint64_t warehouse_segments = 0;
  std::uint32_t manifest_crc = 0;      // CRC-32 of the MANIFEST bytes
  std::uint64_t state_bytes = 0;       // state-<day>.bin size
  std::uint32_t state_crc = 0;         // CRC-32 of the whole state file

  bool operator==(const DayDigests&) const = default;
};

struct RunLogDay {
  int day = 0;
  DayDigests digests;
};

// A parsed journal.
struct RunLogContents {
  std::uint64_t config_digest = 0;
  int days = 0;                    // campaign length in study days
  std::vector<RunLogDay> committed;  // days 0..k in order
  int started = -1;                // trailing day-started record, or -1
  bool truncated_tail = false;     // unreadable bytes followed the prefix

  int LastCommitted() const {
    return committed.empty() ? -1 : committed.back().day;
  }
};

// Codec, exposed for the hostile-input battery: EncodeRunLog renders the
// canonical journal bytes for `contents`; DecodeRunLog parses them back,
// accepting a valid prefix (setting truncated_tail) and rejecting
// structural violations (non-contiguous committed days, day-started that
// is not last, missing config record) with false + `error`.
Bytes EncodeRunLog(const RunLogContents& contents);
bool DecodeRunLog(ByteView bytes, RunLogContents* out, std::string* error);

class RunLog {
 public:
  // Starts a fresh journal at `path` (atomically replacing any previous
  // one) holding only the config record.
  bool Start(const std::string& path, std::uint64_t config_digest, int days,
             std::string* error);

  // Loads an existing journal for resume. False when the file is missing
  // or no valid prefix exists.
  static bool Load(const std::string& path, RunLogContents* out,
                   std::string* error);

  // Continues a journal recovered by Load: rewrites it in canonical form
  // (dropping any uncommitted trailing day-started record and truncated
  // tail) and arms the writer for further records.
  bool Reopen(const std::string& path, const RunLogContents& contents,
              std::string* error);

  // Journal barriers. Days must advance contiguously: DayStarted(k) only
  // for k == LastCommitted()+1, DayCommitted(k) only after DayStarted(k).
  bool DayStarted(int day, std::string* error);
  bool DayCommitted(int day, const DayDigests& digests, std::string* error);

  const RunLogContents& Contents() const { return contents_; }

 private:
  bool Rewrite(std::string* error);

  std::string path_;
  RunLogContents contents_;
};

}  // namespace tlsharm::scanner
