// Observation store: serializes daily scan observations to a line-based
// record format and reloads them, mirroring the paper's publication of its
// raw scan data on scans.io (§3). Analyses can then run offline against a
// stored study instead of re-driving the scanner.
//
// Format (one observation per line, '|'-separated ASCII):
//   day|domain|flags|suite|kex_group|kex_value|session_id|stek_id|hint|failure
// flags bits: 1 connected, 2 handshake_ok, 4 trusted, 8 session_id_set,
//             16 ticket_issued.
// `failure` is the numeric ProbeFailure class. The reader also accepts the
// original nine-field lines and derives the class from the flags.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "attack/record.h"
#include "scanner/observation.h"

namespace tlsharm::scanner {

struct StoredObservation {
  int day = 0;
  HandshakeObservation observation;
};

// The store's five observation flag bits, shared by the text format and the
// warehouse's columnar format so the two encodings can never drift.
inline constexpr int kObservationFlagBits = 5;
inline constexpr int kObservationFlagsMax = (1 << kObservationFlagBits) - 1;
int PackObservationFlags(const HandshakeObservation& observation);
void UnpackObservationFlags(int flags, HandshakeObservation& observation);

// Streaming observation sink: the scan engines push each observation the
// moment the day's canonical merge reaches it, and signal day boundaries,
// so a backend can flush incrementally (a text backend streams lines, the
// warehouse backend closes one columnar segment per day) instead of any
// caller accumulating the whole study in memory first.
//
// Contract (what the engines guarantee, and what backends may rely on):
//   * Append days are non-decreasing; within a day, observations arrive in
//     canonical order (main pass in permutation order, then the requeue
//     pass) — identical for any thread count.
//   * EndDay(day) is called exactly once per scanned day, after the day's
//     last Append.
//   * Finish() is called once, after the last EndDay.
class StoreWriter {
 public:
  virtual ~StoreWriter() = default;

  virtual void Append(int day, const HandshakeObservation& observation) = 0;
  // A scan day completed; all its observations have been appended.
  virtual void EndDay(int day) { (void)day; }
  // The study completed; flush any buffered state.
  virtual void Finish() {}
};

// Fans one observation stream out to several StoreWriters — how a scan
// writes the text store and the warehouse in a single pass.
class MultiStoreWriter : public StoreWriter {
 public:
  void Add(StoreWriter* writer) {
    if (writer != nullptr) writers_.push_back(writer);
  }
  bool Empty() const { return writers_.empty(); }

  void Append(int day, const HandshakeObservation& observation) override {
    for (StoreWriter* w : writers_) w->Append(day, observation);
  }
  void EndDay(int day) override {
    for (StoreWriter* w : writers_) w->EndDay(day);
  }
  void Finish() override {
    for (StoreWriter* w : writers_) w->Finish();
  }

 private:
  std::vector<StoreWriter*> writers_;
};

// The line-based text backend. Streams one '|'-separated line per
// observation straight to `out` — nothing is buffered beyond the ostream.
class ObservationWriter : public StoreWriter {
 public:
  explicit ObservationWriter(std::ostream& out) : out_(out) {}

  void Write(int day, const HandshakeObservation& observation);
  void Append(int day, const HandshakeObservation& observation) override {
    Write(day, observation);
  }
  std::size_t Written() const { return written_; }

 private:
  std::ostream& out_;
  std::size_t written_ = 0;
};

// Durable file-backed text store. Appended lines stage in a small chunk
// buffer that is streamed to the file whenever it fills (so a
// million-domain day holds at most one chunk in memory, not the day);
// EndDay flushes the tail, fsyncs, and passes one crash barrier
// (util/durable.h). Durability is still day-granular: the committed prefix
// (bytes, streaming CRC-32) only advances at EndDay, the campaign journal
// records it at each day commit, and Resume() restores exactly that prefix
// (truncate + verify) so a resumed run's CRC chain continues
// bit-identically — any chunks of an uncommitted day are cut by the
// truncate. Only the journal-less Reopen() can observe a partial day after
// a crash (complete lines of the torn day now reach the disk before its
// commit); journaled campaigns never do.
class TextStoreFile : public StoreWriter {
 public:
  TextStoreFile();
  ~TextStoreFile() override;
  TextStoreFile(const TextStoreFile&) = delete;
  TextStoreFile& operator=(const TextStoreFile&) = delete;

  // Starts a fresh store file (truncating any previous one).
  bool Create(const std::string& path, std::string* error);

  // Reopens after a crash using the journal's committed digests: truncates
  // the file to `committed_bytes`, verifies the surviving prefix's CRC,
  // and positions for append. `truncated` (optional) reports how many
  // uncommitted tail bytes were cut.
  bool Resume(const std::string& path, std::uint64_t committed_bytes,
              std::uint32_t committed_crc, std::uint64_t* truncated,
              std::string* error);

  // Journal-less reopen for standalone tooling: a torn final line (no
  // trailing newline — the signature of a crash mid-write) is truncated
  // away rather than rejected; `torn_lines` reports 0 or 1 so callers can
  // surface it through the store-corruption counter.
  bool Reopen(const std::string& path, std::size_t* torn_lines,
              std::string* error);

  void Append(int day, const HandshakeObservation& observation) override;
  void EndDay(int day) override;
  void Finish() override;

  // I/O failures latch (StoreWriter's interface cannot return them);
  // campaign drivers check Ok() after each EndDay.
  bool Ok() const { return error_.empty(); }
  const std::string& Error() const { return error_; }

  // The durable prefix: bytes and finalized CRC-32 through the last EndDay.
  std::uint64_t CommittedBytes() const { return committed_bytes_; }
  std::uint32_t CommittedCrc() const;

 private:
  bool OpenFd(const std::string& path, bool truncate, std::string* error);
  void Close();
  // Streams the staged chunk to the file (no fsync) and folds it into the
  // current day's CRC state.
  void FlushChunk();

  int fd_ = -1;
  std::string path_;
  std::string buffer_;          // staged lines awaiting the next chunk write
  std::uint64_t committed_bytes_ = 0;
  std::uint32_t crc_state_ = 0;  // streaming state over the committed prefix
  // Streaming state over committed prefix + this day's flushed chunks, and
  // how many uncommitted bytes those chunks hold; promoted into the
  // committed pair at EndDay.
  std::uint32_t day_crc_state_ = 0;
  std::uint64_t day_bytes_ = 0;
  std::string error_;
};

class ObservationReader {
 public:
  explicit ObservationReader(std::istream& in) : in_(in) {}

  // Reads the next observation; nullopt at end of stream. Malformed lines
  // are skipped (counted in Corrupt()).
  std::optional<StoredObservation> Next();
  std::size_t Corrupt() const { return corrupt_; }

 private:
  std::istream& in_;
  std::size_t corrupt_ = 0;
};

// Convenience round-trip helpers used by tests and tooling.
std::string SerializeObservations(
    const std::vector<StoredObservation>& observations);
std::vector<StoredObservation> ParseObservations(const std::string& data);
// As above, but also reports the number of malformed lines that were
// skipped, so loaders can surface corruption instead of silently dropping
// records (they land in the `store.corrupt` metric / scanstats report).
std::vector<StoredObservation> ParseObservations(const std::string& data,
                                                 std::size_t* corrupt);

// Per-shard observation staging for the parallel scan engine. Each worker
// appends to its own shard (no locking — one writer per shard); Flush
// drains the shards in index order, so when shards are contiguous slices
// of the canonical target list, the flushed stream is in canonical global
// order no matter how the workers interleaved.
class ShardedObservationBuffer {
 public:
  explicit ShardedObservationBuffer(std::size_t shards) : shards_(shards) {}

  std::size_t ShardCount() const { return shards_.size(); }

  // Appends one observation to `shard`. Callers guarantee a single writer
  // per shard; distinct shards may append concurrently.
  void Append(std::size_t shard, int day, const HandshakeObservation& obs);

  // Writes every buffered observation in shard order and clears the
  // buffers. Returns the number of observations written.
  std::size_t Flush(StoreWriter& writer);

  // Observations currently staged across all shards.
  std::size_t Buffered() const;

 private:
  std::vector<std::vector<StoredObservation>> shards_;
};

// Per-shard staging for adversary capture records, the tape-side twin of
// ShardedObservationBuffer: one writer per shard, Flush drains shards in
// index order into an attack::CaptureSink, so the tape sees the canonical
// permutation order at any thread count.
class ShardedCaptureBuffer {
 public:
  explicit ShardedCaptureBuffer(std::size_t shards) : shards_(shards) {}

  std::size_t ShardCount() const { return shards_.size(); }

  // Appends one record to `shard` (single writer per shard; distinct
  // shards may append concurrently). Takes the record by value so workers
  // can move the probe's recordings in without a copy.
  void Append(std::size_t shard, int day, attack::CaptureRecord record);

  // Streams every staged record into `sink` in shard order and clears the
  // buffers. Returns the number of records delivered.
  std::size_t Flush(attack::CaptureSink& sink);

  // Records currently staged across all shards.
  std::size_t Buffered() const;

 private:
  struct StagedCapture {
    int day = 0;
    attack::CaptureRecord record;
  };
  std::vector<std::vector<StagedCapture>> shards_;
};

}  // namespace tlsharm::scanner
