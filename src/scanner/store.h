// Observation store: serializes daily scan observations to a line-based
// record format and reloads them, mirroring the paper's publication of its
// raw scan data on scans.io (§3). Analyses can then run offline against a
// stored study instead of re-driving the scanner.
//
// Format (one observation per line, '|'-separated ASCII):
//   day|domain|flags|suite|kex_group|kex_value|session_id|stek_id|hint|failure
// flags bits: 1 connected, 2 handshake_ok, 4 trusted, 8 session_id_set,
//             16 ticket_issued.
// `failure` is the numeric ProbeFailure class. The reader also accepts the
// original nine-field lines and derives the class from the flags.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "scanner/observation.h"

namespace tlsharm::scanner {

struct StoredObservation {
  int day = 0;
  HandshakeObservation observation;
};

class ObservationWriter {
 public:
  explicit ObservationWriter(std::ostream& out) : out_(out) {}

  void Write(int day, const HandshakeObservation& observation);
  std::size_t Written() const { return written_; }

 private:
  std::ostream& out_;
  std::size_t written_ = 0;
};

class ObservationReader {
 public:
  explicit ObservationReader(std::istream& in) : in_(in) {}

  // Reads the next observation; nullopt at end of stream. Malformed lines
  // are skipped (counted in Corrupt()).
  std::optional<StoredObservation> Next();
  std::size_t Corrupt() const { return corrupt_; }

 private:
  std::istream& in_;
  std::size_t corrupt_ = 0;
};

// Convenience round-trip helpers used by tests and tooling.
std::string SerializeObservations(
    const std::vector<StoredObservation>& observations);
std::vector<StoredObservation> ParseObservations(const std::string& data);
// As above, but also reports the number of malformed lines that were
// skipped, so loaders can surface corruption instead of silently dropping
// records (they land in the `store.corrupt` metric / scanstats report).
std::vector<StoredObservation> ParseObservations(const std::string& data,
                                                 std::size_t* corrupt);

// Per-shard observation staging for the parallel scan engine. Each worker
// appends to its own shard (no locking — one writer per shard); Flush
// drains the shards in index order, so when shards are contiguous slices
// of the canonical target list, the flushed stream is in canonical global
// order no matter how the workers interleaved.
class ShardedObservationBuffer {
 public:
  explicit ShardedObservationBuffer(std::size_t shards) : shards_(shards) {}

  std::size_t ShardCount() const { return shards_.size(); }

  // Appends one observation to `shard`. Callers guarantee a single writer
  // per shard; distinct shards may append concurrently.
  void Append(std::size_t shard, int day, const HandshakeObservation& obs);

  // Writes every buffered observation in shard order and clears the
  // buffers. Returns the number of observations written.
  std::size_t Flush(ObservationWriter& writer);

  // Observations currently staged across all shards.
  std::size_t Buffered() const;

 private:
  std::vector<std::vector<StoredObservation>> shards_;
};

}  // namespace tlsharm::scanner
