// Scan-order randomization and target exclusion — the operational half of
// the ZMap tool-chain (§3's "best practices defined by Durumeric et al.").
//
// RandomPermutation visits every index in [0, n) exactly once in a
// pseudorandom order, with O(1) state, the way ZMap iterates the address
// space: a balanced Feistel network over the smallest power-of-four domain
// >= n, cycle-walking over out-of-range values. Scanning in permuted order
// spreads load across operators instead of hammering one AS block — and it
// is deterministic per (seed, day), which is what lets a study replay.
//
// Blacklist holds the institutional exclusion list: domains and AS numbers
// that asked not to be scanned.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "simnet/internet.h"

namespace tlsharm::scanner {

class RandomPermutation {
 public:
  // Permutes [0, n). `seed` selects the permutation.
  RandomPermutation(std::uint64_t n, std::uint64_t seed);

  std::uint64_t Size() const { return n_; }

  // The i-th element of the permutation, i in [0, n).
  std::uint64_t At(std::uint64_t i) const;

 private:
  std::uint64_t Feistel(std::uint64_t x) const;

  std::uint64_t n_;
  int half_bits_;          // bits per Feistel half
  std::uint64_t half_mask_;
  std::uint64_t round_keys_[4];
};

class Blacklist {
 public:
  void ExcludeDomain(const std::string& name);
  void ExcludeAs(std::uint32_t as_number);

  bool Excluded(const simnet::DomainInfo& info) const;
  // Column-accessor form: consults the interned name/AS columns so the scan
  // loop never assembles a DomainInfo (name string + endpoint vector) per
  // visit.
  bool Excluded(const simnet::Internet& net, simnet::DomainId id) const;
  std::size_t RuleCount() const {
    return domains_.size() + as_numbers_.size();
  }

 private:
  std::unordered_set<std::string> domains_;
  std::unordered_set<std::uint32_t> as_numbers_;
};

// The permutation a study uses for `day` — shared by ForEachScanTarget and
// CollectScanTargets so both walk the identical canonical order.
inline RandomPermutation DayPermutation(std::uint64_t n, std::uint64_t seed,
                                        int day) {
  return RandomPermutation(
      n, seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(day + 1)));
}

// Precomputed per-domain blacklist verdicts (1 = excluded). DomainInfo's
// name and AS number never change during a study, so the verdict is
// invariant: one pass here replaces two hash lookups per domain per day in
// the scan loop. Returns an empty vector when the blacklist has no rules.
std::vector<std::uint8_t> BuildExclusionMask(const simnet::Internet& net,
                                             const Blacklist& blacklist);

// The day's scan-target list in canonical (permutation-index) order:
// listed domains, minus exclusions, optionally restricted to HTTPS
// listeners. This is the order the sharded scan engine partitions and the
// order its merged output follows.
std::vector<simnet::DomainId> CollectScanTargets(
    const simnet::Internet& net, int day, std::uint64_t seed,
    const std::vector<std::uint8_t>* exclusion_mask, bool https_only);

// Iterates the day's scan targets in permuted order, honouring the
// blacklist. Calls `visit(domain_id)` for every included listed domain.
template <typename Visitor>
void ForEachScanTarget(const simnet::Internet& net, int day,
                       std::uint64_t seed, const Blacklist& blacklist,
                       Visitor&& visit) {
  const RandomPermutation perm = DayPermutation(net.DomainCount(), seed, day);
  // Invariant hoisted out of the hot loop: an empty blacklist (the common
  // case) pays no per-visit hash lookups at all.
  const bool check_blacklist = blacklist.RuleCount() != 0;
  for (std::uint64_t i = 0; i < perm.Size(); ++i) {
    const auto id = static_cast<simnet::DomainId>(perm.At(i));
    if (!net.InTopListOnDay(id, day)) continue;
    if (check_blacklist && blacklist.Excluded(net, id)) continue;
    visit(id);
  }
}

}  // namespace tlsharm::scanner
