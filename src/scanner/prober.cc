#include "scanner/prober.h"

#include <algorithm>

#include "tls/ticket.h"

namespace tlsharm::scanner {
namespace {

ProbeFailure FailureFromConnect(simnet::Internet::ConnectStatus status) {
  switch (status) {
    case simnet::Internet::ConnectStatus::kOk:
      return ProbeFailure::kNone;
    case simnet::Internet::ConnectStatus::kNoHttps:
      return ProbeFailure::kNoHttps;
    case simnet::Internet::ConnectStatus::kRefused:
      return ProbeFailure::kRefused;
    case simnet::Internet::ConnectStatus::kTimeout:
    case simnet::Internet::ConnectStatus::kOutage:
      return ProbeFailure::kTimeout;
  }
  return ProbeFailure::kNoHttps;
}

ProbeFailure FailureFromHandshake(tls::HandshakeErrorClass error_class) {
  switch (error_class) {
    case tls::HandshakeErrorClass::kReset:
      return ProbeFailure::kReset;
    case tls::HandshakeErrorClass::kTimeout:
      return ProbeFailure::kTimeout;
    case tls::HandshakeErrorClass::kAlert:
      return ProbeFailure::kAlert;
    case tls::HandshakeErrorClass::kMalformed:
    case tls::HandshakeErrorClass::kNone:
      return ProbeFailure::kMalformed;
  }
  return ProbeFailure::kMalformed;
}

// Virtual-time cost of a failed attempt: a timeout burns the full attempt
// deadline, everything else fails fast.
SimTime AttemptCost(ProbeFailure failure, const RetryPolicy& policy) {
  return failure == ProbeFailure::kTimeout ? policy.attempt_timeout
                                           : SimTime{1};
}

// Folds the wire-affecting probe options into a salt for the per-attempt
// DRBG derivation: same-instant probes with different offers (e.g. the
// group measurement's DHE and ECDHE connections) get distinct streams.
std::uint64_t OptionsSalt(const ProbeOptions& options) {
  std::uint64_t salt = static_cast<std::uint64_t>(options.ciphers);
  if (options.offer_session_ticket) salt |= 0x10;
  if (options.kex_only) salt |= 0x20;
  return salt;
}

// Distinct salt domain for resumption attempts.
std::uint64_t ResumeSalt(bool offer_id, bool offer_ticket) {
  std::uint64_t salt = 0x100;
  if (offer_id) salt |= 1;
  if (offer_ticket) salt |= 2;
  return salt;
}

// Trust-cache entry cap. Sized so a full cache stays in the tens of MB at
// million-domain populations; on overflow both memo caches are cleared and
// re-warm (see the header note on why that cannot change observations).
constexpr std::size_t kTrustCacheCap = 1u << 18;

}  // namespace

Prober::Prober(simnet::Internet& net, std::uint64_t seed)
    : net_(net), seed_(seed) {}

void Prober::SetMetrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  m_ = ProberMetricHandles{};
  if (registry == nullptr) return;
  m_.probes = &registry->GetCounter("probe.probes");
  m_.attempts = &registry->GetCounter("probe.attempts");
  m_.retries = &registry->GetCounter("probe.retries");
  m_.handshakes_ok = &registry->GetCounter("probe.handshake_ok");
  m_.trusted = &registry->GetCounter("probe.trusted");
  m_.resume_attempts = &registry->GetCounter("resume.attempts");
  m_.resume_accepted = &registry->GetCounter("resume.accepted");
  m_.resume_rejected = &registry->GetCounter("resume.rejected");
  // Buckets in seconds; the top bucket catches budget-length waits.
  m_.backoff_wait = &registry->GetHistogram("probe.backoff_wait",
                                            {2, 4, 8, 16, 32, 64, 128});
  m_.attempts_per_probe =
      &registry->GetHistogram("probe.attempts_per_probe", {1, 2, 3, 4, 6, 8});
  for (int i = 0; i < kProbeFailureClasses; ++i) {
    std::string name = "probe.failure.";
    name += ToString(static_cast<ProbeFailure>(i));
    m_.failures[static_cast<std::size_t>(i)] = &registry->GetCounter(name);
  }
}

crypto::Drbg Prober::AttemptDrbg(simnet::DomainId domain, SimTime when,
                                 std::uint64_t salt) {
  static constexpr char kLabel[] = "probe";
  Bytes& s = drbg_seed_;
  s.assign(kLabel, kLabel + sizeof(kLabel) - 1);
  AppendUint(s, seed_, 8);
  AppendUint(s, domain, 4);
  AppendUint(s, static_cast<std::uint64_t>(when), 8);
  AppendUint(s, salt, 8);
  return crypto::Drbg(s);
}

void Prober::AssignSuites(CipherSelection selection,
                          std::vector<tls::CipherSuite>* out) const {
  out->clear();
  switch (selection) {
    case CipherSelection::kDefault:
      out->push_back(tls::CipherSuite::kEcdheWithAes128CbcSha256);
      out->push_back(tls::CipherSuite::kDheWithAes128CbcSha256);
      out->push_back(tls::CipherSuite::kStaticWithAes128CbcSha256);
      return;
    case CipherSelection::kDheOnly:
      out->push_back(tls::CipherSuite::kDheWithAes128CbcSha256);
      return;
    case CipherSelection::kEcdheOnly:
      out->push_back(tls::CipherSuite::kEcdheWithAes128CbcSha256);
      return;
    case CipherSelection::kEcdheAndStatic:
      out->push_back(tls::CipherSuite::kEcdheWithAes128CbcSha256);
      out->push_back(tls::CipherSuite::kStaticWithAes128CbcSha256);
      return;
  }
}

bool Prober::ChainTrusted(const pki::CertificateChain& chain,
                          const std::string& host, SimTime now) {
  if (chain.empty()) return false;
  const Bytes fp = chain.front().Fingerprint();
  trust_key_.assign(fp.begin(), fp.end());
  trust_key_.push_back('\0');
  trust_key_ += host;
  const auto it = trust_cache_.find(trust_key_);
  if (it != trust_cache_.end()) return it->second;
  const bool trusted =
      net_.NssRootStore().Verify(chain, host, now, &verify_cache_) ==
      pki::VerifyStatus::kOk;
  if (trust_cache_.size() >= kTrustCacheCap) {
    trust_cache_.clear();
    verify_cache_.Clear();
  }
  trust_cache_.emplace(trust_key_, trusted);
  return trusted;
}

SimTime Prober::Jitter(simnet::DomainId domain, SimTime when,
                       int attempt) const {
  std::uint64_t s = seed_ ^ 0x6a17e2b0ff5e77c3ULL;
  s += static_cast<std::uint64_t>(domain) * 0x9e3779b97f4a7c15ULL;
  s += static_cast<std::uint64_t>(when) * 0xbf58476d1ce4e5b9ULL;
  s += static_cast<std::uint64_t>(attempt);
  const std::uint64_t draw = SplitMix64(s);
  const SimTime span = retry_.base_backoff + 1;
  return span <= 0 ? 0 : static_cast<SimTime>(draw % span);
}

ProbeResult Prober::ProbeOnce(simnet::DomainId domain, SimTime now,
                              const ProbeOptions& options) {
  ProbeResult result;
  HandshakeObservation& obs = result.observation;
  obs.domain = domain;
  obs.time = now;

  auto outcome = net_.ConnectDetailed(domain, now);
  if (outcome.connection == nullptr) {
    obs.failure = FailureFromConnect(outcome.status);
    return result;
  }
  obs.connected = true;

  // Reused scratch config: only capacities survive from the previous probe
  // (every field is reassigned here), so each probe still sees a value
  // config while the steady-state path stages it without allocating.
  tls::ClientConfig& config = probe_config_;
  AssignSuites(options.ciphers, &config.offered_suites);
  config.offer_session_ticket = options.offer_session_ticket;
  net_.AssignDomainName(domain, &config.server_name);
  config.kex_probe_only = options.kex_only;

  tls::TlsClient client(&config);
  crypto::Drbg drbg = AttemptDrbg(domain, now, OptionsSalt(options));
  // With recording on, the connection is driven through a passive tap and
  // summarized into a CaptureRecord whatever the handshake outcome — the
  // adversary's buffer keeps malformed and aborted exchanges too.
  attack::PassiveCapture tap;
  tls::ServerConnection* wire = outcome.connection.get();
  std::optional<tls::TappedConnection> tapped;
  if (record_captures_) {
    tapped.emplace(*outcome.connection, tap);
    wire = &*tapped;
  }
  const tls::HandshakeResult hs = client.Handshake(*wire, now, drbg);
  if (record_captures_) {
    result.captures.push_back(attack::SummarizeCapture(
        domain, now, net_.EndpointFor(domain, now), tap.Log()));
  }
  if (!hs.ok) {
    obs.failure = FailureFromHandshake(hs.error_class);
    return result;
  }

  obs.handshake_ok = true;
  obs.trusted = ChainTrusted(hs.chain, config.server_name, now);
  obs.failure = obs.trusted ? ProbeFailure::kNone : ProbeFailure::kUntrusted;
  obs.suite = hs.suite;
  obs.kex_group = hs.kex_group;
  obs.kex_value = FingerprintSecret(hs.server_kex_public);
  obs.session_id_set = !hs.session_id.empty();
  obs.session_id = FingerprintSecret(hs.session_id);
  obs.ticket_issued = hs.ticket_issued;
  obs.ticket_lifetime_hint = hs.ticket_lifetime_hint;
  if (hs.ticket_issued) {
    const auto stek_id = tls::ExtractStekIdAuto(hs.ticket);
    if (stek_id) obs.stek_id = FingerprintSecret(*stek_id);
  }

  if (options.want_full_result) {
    result.session.domain = domain;
    result.session.session_id = hs.session_id;
    result.session.ticket = hs.ticket;
    result.session.ticket_lifetime_hint = hs.ticket_lifetime_hint;
    result.session.master_secret = hs.master_secret;
    result.session.valid = true;
  }
  return result;
}

ProbeResult Prober::Probe(simnet::DomainId domain, SimTime now,
                          const ProbeOptions& options) {
  const int max_attempts = std::max(1, retry_.max_attempts);
  ProbeResult result;
  std::vector<ProbeAttempt> attempt_log;
  std::vector<attack::CaptureRecord> captures;
  SimTime elapsed = 0;
  int attempt = 0;
  for (;;) {
    ++attempt;
    const SimTime start = now + elapsed;
    result = ProbeOnce(domain, start, options);
    // The adversary records every attempt that reached the wire, retried
    // or not — a retry is one more connection in the buffer.
    if (record_captures_ && !result.captures.empty()) {
      captures.insert(captures.end(),
                      std::make_move_iterator(result.captures.begin()),
                      std::make_move_iterator(result.captures.end()));
    }
    const ProbeFailure failure = result.observation.failure;
    const SimTime cost = AttemptCost(failure, retry_);
    if (!IsTransportFailure(failure) || attempt >= max_attempts) {
      if (log_attempts_) attempt_log.push_back({start, cost, 0, failure});
      break;
    }
    const SimTime backoff = std::min(
        retry_.base_backoff << std::min(attempt - 1, 16), retry_.max_backoff);
    const SimTime wait = backoff + Jitter(domain, start, attempt);
    if (elapsed + cost + wait > retry_.budget) {
      if (log_attempts_) attempt_log.push_back({start, cost, 0, failure});
      break;
    }
    if (log_attempts_) attempt_log.push_back({start, cost, wait, failure});
    if (metrics_ != nullptr) m_.backoff_wait->Observe(wait);
    elapsed += cost + wait;
  }
  // Report against the scheduled probe time so day attribution is stable.
  result.observation.time = now;
  result.observation.attempts = static_cast<std::uint8_t>(
      std::min(attempt, 255));
  result.attempt_log = std::move(attempt_log);
  result.captures = std::move(captures);
  if (metrics_ != nullptr) {
    m_.probes->Add(1);
    m_.attempts->Add(attempt);
    m_.retries->Add(attempt - 1);
    m_.attempts_per_probe->Observe(attempt);
    m_.failures[static_cast<std::size_t>(result.observation.failure)]->Add(1);
    if (result.observation.handshake_ok) m_.handshakes_ok->Add(1);
    if (result.observation.trusted) m_.trusted->Add(1);
  }
  return result;
}

bool Prober::RunResume(const StoredSession& session, simnet::DomainId domain,
                       SimTime now, bool offer_id, bool offer_ticket) {
  if (!session.valid) return false;
  const int max_attempts = std::max(1, retry_.max_attempts);
  SimTime elapsed = 0;
  for (int attempt = 1;; ++attempt) {
    const SimTime when = now + elapsed;
    if (metrics_ != nullptr) m_.resume_attempts->Add(1);
    auto outcome = net_.ConnectDetailed(domain, when);
    ProbeFailure failure = ProbeFailure::kNone;
    if (outcome.connection == nullptr) {
      failure = FailureFromConnect(outcome.status);
    } else {
      tls::ClientConfig& config = resume_config_;
      net_.AssignDomainName(domain, &config.server_name);
      config.resume_master_secret = session.master_secret;
      config.resume_session_id.clear();
      config.resume_ticket.clear();
      if (offer_id) config.resume_session_id = session.session_id;
      if (offer_ticket) config.resume_ticket = session.ticket;

      tls::TlsClient client(&config);
      crypto::Drbg drbg =
          AttemptDrbg(domain, when, ResumeSalt(offer_id, offer_ticket));
      const tls::HandshakeResult hs =
          client.Handshake(*outcome.connection, when, drbg);
      if (hs.ok) {
        if (metrics_ != nullptr) {
          (hs.resumed ? m_.resume_accepted : m_.resume_rejected)->Add(1);
        }
        return hs.resumed;
      }
      failure = FailureFromHandshake(hs.error_class);
    }
    if (!IsTransportFailure(failure) || attempt >= max_attempts) return false;
    const SimTime backoff = std::min(
        retry_.base_backoff << std::min(attempt - 1, 16), retry_.max_backoff);
    const SimTime delay =
        AttemptCost(failure, retry_) + backoff + Jitter(domain, when, attempt);
    if (elapsed + delay > retry_.budget) return false;
    elapsed += delay;
  }
}

bool Prober::TryResume(const StoredSession& session, simnet::DomainId domain,
                       SimTime now) {
  return RunResume(session, domain, now, true, true);
}

bool Prober::TryResumeId(const StoredSession& session,
                         simnet::DomainId domain, SimTime now) {
  return RunResume(session, domain, now, true, false);
}

bool Prober::TryResumeTicket(const StoredSession& session,
                             simnet::DomainId domain, SimTime now) {
  return RunResume(session, domain, now, false, true);
}

}  // namespace tlsharm::scanner
