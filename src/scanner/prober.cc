#include "scanner/prober.h"

#include "tls/ticket.h"

namespace tlsharm::scanner {

Prober::Prober(simnet::Internet& net, std::uint64_t seed) : net_(net),
      drbg_([&] {
        Bytes s = ToBytes("prober");
        AppendUint(s, seed, 8);
        return crypto::Drbg(s);
      }()) {}

std::vector<tls::CipherSuite> Prober::SuitesFor(
    CipherSelection selection) const {
  switch (selection) {
    case CipherSelection::kDefault:
      return {tls::CipherSuite::kEcdheWithAes128CbcSha256,
              tls::CipherSuite::kDheWithAes128CbcSha256,
              tls::CipherSuite::kStaticWithAes128CbcSha256};
    case CipherSelection::kDheOnly:
      return {tls::CipherSuite::kDheWithAes128CbcSha256};
    case CipherSelection::kEcdheOnly:
      return {tls::CipherSuite::kEcdheWithAes128CbcSha256};
    case CipherSelection::kEcdheAndStatic:
      return {tls::CipherSuite::kEcdheWithAes128CbcSha256,
              tls::CipherSuite::kStaticWithAes128CbcSha256};
  }
  return {};
}

bool Prober::ChainTrusted(const pki::CertificateChain& chain,
                          const std::string& host, SimTime now) {
  if (chain.empty()) return false;
  const Bytes fp = chain.front().Fingerprint();
  const std::uint64_t key =
      FingerprintSecret(fp) ^ StableHash64(host);
  const auto it = trust_cache_.find(key);
  if (it != trust_cache_.end()) return it->second;
  const bool trusted =
      net_.NssRootStore().Verify(chain, host, now) == pki::VerifyStatus::kOk;
  trust_cache_.emplace(key, trusted);
  return trusted;
}

ProbeResult Prober::Probe(simnet::DomainId domain, SimTime now,
                          const ProbeOptions& options) {
  ProbeResult result;
  HandshakeObservation& obs = result.observation;
  obs.domain = domain;
  obs.time = now;

  auto conn = net_.Connect(domain, now);
  if (conn == nullptr) return result;
  obs.connected = true;

  tls::ClientConfig config;
  config.offered_suites = SuitesFor(options.ciphers);
  config.offer_session_ticket = options.offer_session_ticket;
  config.server_name = net_.GetDomain(domain).name;
  config.kex_probe_only = options.kex_only;

  tls::TlsClient client(config);
  const tls::HandshakeResult hs = client.Handshake(*conn, now, drbg_);
  if (!hs.ok) return result;

  obs.handshake_ok = true;
  obs.trusted = ChainTrusted(hs.chain, config.server_name, now);
  obs.suite = hs.suite;
  obs.kex_group = hs.kex_group;
  obs.kex_value = FingerprintSecret(hs.server_kex_public);
  obs.session_id_set = !hs.session_id.empty();
  obs.session_id = FingerprintSecret(hs.session_id);
  obs.ticket_issued = hs.ticket_issued;
  obs.ticket_lifetime_hint = hs.ticket_lifetime_hint;
  if (hs.ticket_issued) {
    const auto stek_id = tls::ExtractStekIdAuto(hs.ticket);
    if (stek_id) obs.stek_id = FingerprintSecret(*stek_id);
  }

  if (options.want_full_result) {
    result.session.domain = domain;
    result.session.session_id = hs.session_id;
    result.session.ticket = hs.ticket;
    result.session.ticket_lifetime_hint = hs.ticket_lifetime_hint;
    result.session.master_secret = hs.master_secret;
    result.session.valid = true;
  }
  return result;
}

bool Prober::RunResume(const StoredSession& session, simnet::DomainId domain,
                       SimTime now, bool offer_id, bool offer_ticket) {
  if (!session.valid) return false;
  auto conn = net_.Connect(domain, now);
  if (conn == nullptr) return false;

  tls::ClientConfig config;
  config.server_name = net_.GetDomain(domain).name;
  config.resume_master_secret = session.master_secret;
  if (offer_id) config.resume_session_id = session.session_id;
  if (offer_ticket) config.resume_ticket = session.ticket;

  tls::TlsClient client(config);
  const tls::HandshakeResult hs = client.Handshake(*conn, now, drbg_);
  return hs.ok && hs.resumed;
}

bool Prober::TryResume(const StoredSession& session, simnet::DomainId domain,
                       SimTime now) {
  return RunResume(session, domain, now, true, true);
}

bool Prober::TryResumeId(const StoredSession& session,
                         simnet::DomainId domain, SimTime now) {
  return RunResume(session, domain, now, true, false);
}

bool Prober::TryResumeTicket(const StoredSession& session,
                             simnet::DomainId domain, SimTime now) {
  return RunResume(session, domain, now, false, true);
}

}  // namespace tlsharm::scanner
