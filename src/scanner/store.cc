#include "scanner/store.h"

#include <charconv>
#include <sstream>

namespace tlsharm::scanner {
namespace {

constexpr int kConnected = 1;
constexpr int kHandshakeOk = 2;
constexpr int kTrusted = 4;
constexpr int kSessionIdSet = 8;
constexpr int kTicketIssued = 16;

// Legacy nine-field lines predate the failure taxonomy; reconstruct the
// closest class the flags still distinguish.
ProbeFailure DeriveFailure(const HandshakeObservation& obs) {
  if (!obs.connected) return ProbeFailure::kNoHttps;
  if (!obs.handshake_ok) return ProbeFailure::kAlert;
  if (!obs.trusted) return ProbeFailure::kUntrusted;
  return ProbeFailure::kNone;
}

// Parses one '|'-separated line; false on malformed input. Accepts nine
// (legacy) or ten fields.
bool ParseLine(const std::string& line, StoredObservation& out) {
  std::uint64_t fields[10];
  std::size_t field = 0;
  const char* p = line.data();
  const char* end = line.data() + line.size();
  while (field < 10) {
    std::uint64_t value = 0;
    const auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc()) return false;
    fields[field++] = value;
    p = next;
    if (p == end) break;
    if (*p != '|') return false;
    ++p;
    if (field == 10) return false;  // trailing separator / extra field
  }
  if (p != end || field < 9) return false;

  out.day = static_cast<int>(fields[0]);
  HandshakeObservation& obs = out.observation;
  obs.domain = static_cast<DomainIndex>(fields[1]);
  UnpackObservationFlags(static_cast<int>(fields[2]), obs);
  obs.suite = static_cast<tls::CipherSuite>(fields[3]);
  obs.kex_group = static_cast<std::uint16_t>(fields[4]);
  obs.kex_value = fields[5];
  obs.session_id = fields[6];
  obs.stek_id = fields[7];
  obs.ticket_lifetime_hint = static_cast<std::uint32_t>(fields[8]);
  if (field == 10) {
    if (fields[9] >= static_cast<std::uint64_t>(kProbeFailureClasses)) {
      return false;
    }
    obs.failure = static_cast<ProbeFailure>(fields[9]);
  } else {
    obs.failure = DeriveFailure(obs);
  }
  return true;
}

}  // namespace

int PackObservationFlags(const HandshakeObservation& obs) {
  int flags = 0;
  if (obs.connected) flags |= kConnected;
  if (obs.handshake_ok) flags |= kHandshakeOk;
  if (obs.trusted) flags |= kTrusted;
  if (obs.session_id_set) flags |= kSessionIdSet;
  if (obs.ticket_issued) flags |= kTicketIssued;
  return flags;
}

void UnpackObservationFlags(int flags, HandshakeObservation& obs) {
  obs.connected = flags & kConnected;
  obs.handshake_ok = flags & kHandshakeOk;
  obs.trusted = flags & kTrusted;
  obs.session_id_set = flags & kSessionIdSet;
  obs.ticket_issued = flags & kTicketIssued;
}

void ObservationWriter::Write(int day, const HandshakeObservation& obs) {
  out_ << day << '|' << obs.domain << '|' << PackObservationFlags(obs) << '|'
       << static_cast<std::uint16_t>(obs.suite) << '|' << obs.kex_group
       << '|' << obs.kex_value << '|' << obs.session_id << '|' << obs.stek_id
       << '|' << obs.ticket_lifetime_hint << '|'
       << static_cast<int>(obs.failure) << '\n';
  ++written_;
}

std::optional<StoredObservation> ObservationReader::Next() {
  std::string line;
  while (std::getline(in_, line)) {
    if (line.empty()) continue;
    StoredObservation out;
    if (ParseLine(line, out)) return out;
    ++corrupt_;
  }
  return std::nullopt;
}

std::string SerializeObservations(
    const std::vector<StoredObservation>& observations) {
  std::ostringstream out;
  ObservationWriter writer(out);
  for (const auto& stored : observations) {
    writer.Write(stored.day, stored.observation);
  }
  return out.str();
}

std::vector<StoredObservation> ParseObservations(const std::string& data) {
  return ParseObservations(data, nullptr);
}

std::vector<StoredObservation> ParseObservations(const std::string& data,
                                                 std::size_t* corrupt) {
  std::istringstream in(data);
  ObservationReader reader(in);
  std::vector<StoredObservation> out;
  while (auto next = reader.Next()) out.push_back(*next);
  if (corrupt != nullptr) *corrupt = reader.Corrupt();
  return out;
}

void ShardedObservationBuffer::Append(std::size_t shard, int day,
                                      const HandshakeObservation& obs) {
  shards_[shard].push_back(StoredObservation{day, obs});
}

std::size_t ShardedObservationBuffer::Flush(StoreWriter& writer) {
  std::size_t written = 0;
  for (auto& shard : shards_) {
    for (const StoredObservation& stored : shard) {
      writer.Append(stored.day, stored.observation);
      ++written;
    }
    shard.clear();
  }
  return written;
}

std::size_t ShardedObservationBuffer::Buffered() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.size();
  return total;
}

}  // namespace tlsharm::scanner
