#include "scanner/store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/crc32.h"
#include "util/durable.h"

namespace tlsharm::scanner {
namespace {

constexpr int kConnected = 1;
constexpr int kHandshakeOk = 2;
constexpr int kTrusted = 4;
constexpr int kSessionIdSet = 8;
constexpr int kTicketIssued = 16;

// Legacy nine-field lines predate the failure taxonomy; reconstruct the
// closest class the flags still distinguish.
ProbeFailure DeriveFailure(const HandshakeObservation& obs) {
  if (!obs.connected) return ProbeFailure::kNoHttps;
  if (!obs.handshake_ok) return ProbeFailure::kAlert;
  if (!obs.trusted) return ProbeFailure::kUntrusted;
  return ProbeFailure::kNone;
}

// Parses one '|'-separated line; false on malformed input. Accepts nine
// (legacy) or ten fields.
bool ParseLine(const std::string& line, StoredObservation& out) {
  std::uint64_t fields[10];
  std::size_t field = 0;
  const char* p = line.data();
  const char* end = line.data() + line.size();
  while (field < 10) {
    std::uint64_t value = 0;
    const auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc()) return false;
    fields[field++] = value;
    p = next;
    if (p == end) break;
    if (*p != '|') return false;
    ++p;
    if (field == 10) return false;  // trailing separator / extra field
  }
  if (p != end || field < 9) return false;

  out.day = static_cast<int>(fields[0]);
  HandshakeObservation& obs = out.observation;
  obs.domain = static_cast<DomainIndex>(fields[1]);
  UnpackObservationFlags(static_cast<int>(fields[2]), obs);
  obs.suite = static_cast<tls::CipherSuite>(fields[3]);
  obs.kex_group = static_cast<std::uint16_t>(fields[4]);
  obs.kex_value = fields[5];
  obs.session_id = fields[6];
  obs.stek_id = fields[7];
  obs.ticket_lifetime_hint = static_cast<std::uint32_t>(fields[8]);
  if (field == 10) {
    if (fields[9] >= static_cast<std::uint64_t>(kProbeFailureClasses)) {
      return false;
    }
    obs.failure = static_cast<ProbeFailure>(fields[9]);
  } else {
    obs.failure = DeriveFailure(obs);
  }
  return true;
}

// Chunk threshold for TextStoreFile's streaming writes: staged lines are
// written out (without fsync) whenever they reach this size, so staging
// memory is O(chunk), not O(day).
constexpr std::size_t kStoreChunkBytes = std::size_t{1} << 20;

void AppendDecimal(std::string& out, std::uint64_t value) {
  char buf[20];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, end);
}

// Formats one store line into `out` (appending). The single definition of
// the on-disk text format — the ostream writer renders through it too, so
// the two paths cannot drift.
void AppendObservationLine(std::string& out, int day,
                           const HandshakeObservation& obs) {
  AppendDecimal(out, static_cast<std::uint64_t>(day));
  out.push_back('|');
  AppendDecimal(out, obs.domain);
  out.push_back('|');
  AppendDecimal(out, static_cast<std::uint64_t>(PackObservationFlags(obs)));
  out.push_back('|');
  AppendDecimal(out, static_cast<std::uint16_t>(obs.suite));
  out.push_back('|');
  AppendDecimal(out, obs.kex_group);
  out.push_back('|');
  AppendDecimal(out, obs.kex_value);
  out.push_back('|');
  AppendDecimal(out, obs.session_id);
  out.push_back('|');
  AppendDecimal(out, obs.stek_id);
  out.push_back('|');
  AppendDecimal(out, obs.ticket_lifetime_hint);
  out.push_back('|');
  AppendDecimal(out, static_cast<std::uint64_t>(obs.failure));
  out.push_back('\n');
}

}  // namespace

int PackObservationFlags(const HandshakeObservation& obs) {
  int flags = 0;
  if (obs.connected) flags |= kConnected;
  if (obs.handshake_ok) flags |= kHandshakeOk;
  if (obs.trusted) flags |= kTrusted;
  if (obs.session_id_set) flags |= kSessionIdSet;
  if (obs.ticket_issued) flags |= kTicketIssued;
  return flags;
}

void UnpackObservationFlags(int flags, HandshakeObservation& obs) {
  obs.connected = flags & kConnected;
  obs.handshake_ok = flags & kHandshakeOk;
  obs.trusted = flags & kTrusted;
  obs.session_id_set = flags & kSessionIdSet;
  obs.ticket_issued = flags & kTicketIssued;
}

void ObservationWriter::Write(int day, const HandshakeObservation& obs) {
  thread_local std::string line;
  line.clear();
  AppendObservationLine(line, day, obs);
  out_ << line;
  ++written_;
}

std::optional<StoredObservation> ObservationReader::Next() {
  std::string line;
  while (std::getline(in_, line)) {
    if (line.empty()) continue;
    StoredObservation out;
    if (ParseLine(line, out)) return out;
    ++corrupt_;
  }
  return std::nullopt;
}

std::string SerializeObservations(
    const std::vector<StoredObservation>& observations) {
  std::ostringstream out;
  ObservationWriter writer(out);
  for (const auto& stored : observations) {
    writer.Write(stored.day, stored.observation);
  }
  return out.str();
}

std::vector<StoredObservation> ParseObservations(const std::string& data) {
  return ParseObservations(data, nullptr);
}

std::vector<StoredObservation> ParseObservations(const std::string& data,
                                                 std::size_t* corrupt) {
  std::istringstream in(data);
  ObservationReader reader(in);
  std::vector<StoredObservation> out;
  while (auto next = reader.Next()) out.push_back(*next);
  if (corrupt != nullptr) *corrupt = reader.Corrupt();
  return out;
}

namespace {

bool WriteAll(int fd, const char* data, std::size_t size, std::string* error) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadFileString(const std::string& path, std::string* out,
                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream content;
  content << in.rdbuf();
  *out = content.str();
  return true;
}

ByteView AsBytes(const std::string& s) {
  return ByteView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

}  // namespace

TextStoreFile::TextStoreFile()
    : crc_state_(Crc32Init()), day_crc_state_(Crc32Init()) {}

TextStoreFile::~TextStoreFile() { Close(); }

void TextStoreFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TextStoreFile::OpenFd(const std::string& path, bool truncate,
                           std::string* error) {
  Close();
  int flags = O_WRONLY | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = path + ": " + std::strerror(errno);
    }
    return false;
  }
  path_ = path;
  return true;
}

bool TextStoreFile::Create(const std::string& path, std::string* error) {
  if (!OpenFd(path, /*truncate=*/true, error)) return false;
  buffer_.clear();
  committed_bytes_ = 0;
  crc_state_ = Crc32Init();
  day_crc_state_ = crc_state_;
  day_bytes_ = 0;
  error_.clear();
  return true;
}

bool TextStoreFile::Resume(const std::string& path,
                           std::uint64_t committed_bytes,
                           std::uint32_t committed_crc,
                           std::uint64_t* truncated, std::string* error) {
  std::string contents;
  if (!ReadFileString(path, &contents, error)) return false;
  if (contents.size() < committed_bytes) {
    if (error != nullptr) {
      *error = path + ": shorter than the journal's committed prefix (" +
               std::to_string(contents.size()) + " < " +
               std::to_string(committed_bytes) + " bytes)";
    }
    return false;
  }
  const std::uint32_t state =
      Crc32Update(Crc32Init(), ByteView(AsBytes(contents).data(),
                                        static_cast<std::size_t>(
                                            committed_bytes)));
  if (Crc32Final(state) != committed_crc) {
    if (error != nullptr) {
      *error = path + ": committed prefix fails its journal CRC";
    }
    return false;
  }
  if (truncated != nullptr) *truncated = contents.size() - committed_bytes;
  if (!OpenFd(path, /*truncate=*/false, error)) return false;
  if (::ftruncate(fd_, static_cast<off_t>(committed_bytes)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    if (error != nullptr) *error = path + ": " + std::strerror(errno);
    Close();
    return false;
  }
  std::string sync_err;
  if (!FsyncFd(fd_, &sync_err)) {
    if (error != nullptr) *error = path + ": " + sync_err;
    Close();
    return false;
  }
  buffer_.clear();
  committed_bytes_ = committed_bytes;
  crc_state_ = state;
  day_crc_state_ = state;
  day_bytes_ = 0;
  error_.clear();
  return true;
}

bool TextStoreFile::Reopen(const std::string& path, std::size_t* torn_lines,
                           std::string* error) {
  std::string contents;
  if (!ReadFileString(path, &contents, error)) return false;
  std::size_t keep = contents.size();
  std::size_t torn = 0;
  if (keep > 0 && contents[keep - 1] != '\n') {
    const std::size_t nl = contents.rfind('\n');
    keep = (nl == std::string::npos) ? 0 : nl + 1;
    torn = 1;
  }
  if (torn_lines != nullptr) *torn_lines = torn;
  if (!OpenFd(path, /*truncate=*/false, error)) return false;
  if (::ftruncate(fd_, static_cast<off_t>(keep)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    if (error != nullptr) *error = path + ": " + std::strerror(errno);
    Close();
    return false;
  }
  buffer_.clear();
  committed_bytes_ = keep;
  crc_state_ = Crc32Update(Crc32Init(),
                           ByteView(AsBytes(contents).data(), keep));
  day_crc_state_ = crc_state_;
  day_bytes_ = 0;
  error_.clear();
  return true;
}

void TextStoreFile::Append(int day, const HandshakeObservation& obs) {
  AppendObservationLine(buffer_, day, obs);
  if (buffer_.size() >= kStoreChunkBytes) FlushChunk();
}

void TextStoreFile::FlushChunk() {
  if (!error_.empty() || buffer_.empty()) return;
  if (fd_ < 0) {
    error_ = "store file not open";
    return;
  }
  std::string err;
  if (!WriteAll(fd_, buffer_.data(), buffer_.size(), &err)) {
    error_ = path_ + ": " + err;
    return;
  }
  day_crc_state_ = Crc32Update(day_crc_state_, AsBytes(buffer_));
  day_bytes_ += buffer_.size();
  buffer_.clear();
}

void TextStoreFile::EndDay(int) {
  FlushChunk();
  if (!error_.empty()) return;
  if (fd_ < 0) {
    error_ = "store file not open";
    return;
  }
  std::string err;
  if (!FsyncFd(fd_, &err)) {
    error_ = path_ + ": " + err;
    return;
  }
  CrashPoint();  // the day's store block is durable
  crc_state_ = day_crc_state_;
  committed_bytes_ += day_bytes_;
  day_bytes_ = 0;
}

void TextStoreFile::Finish() {
  if (error_.empty() && fd_ >= 0 && (!buffer_.empty() || day_bytes_ != 0)) {
    // Engines end every day before finishing; anything still staged means
    // a misuse, but flush it rather than drop it.
    EndDay(0);
  }
  Close();
}

std::uint32_t TextStoreFile::CommittedCrc() const {
  return Crc32Final(crc_state_);
}

void ShardedObservationBuffer::Append(std::size_t shard, int day,
                                      const HandshakeObservation& obs) {
  shards_[shard].push_back(StoredObservation{day, obs});
}

std::size_t ShardedObservationBuffer::Flush(StoreWriter& writer) {
  std::size_t written = 0;
  for (auto& shard : shards_) {
    for (const StoredObservation& stored : shard) {
      writer.Append(stored.day, stored.observation);
      ++written;
    }
    shard.clear();
  }
  return written;
}

std::size_t ShardedObservationBuffer::Buffered() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.size();
  return total;
}

void ShardedCaptureBuffer::Append(std::size_t shard, int day,
                                  attack::CaptureRecord record) {
  shards_[shard].push_back(StagedCapture{day, std::move(record)});
}

std::size_t ShardedCaptureBuffer::Flush(attack::CaptureSink& sink) {
  std::size_t delivered = 0;
  for (auto& shard : shards_) {
    for (const StagedCapture& staged : shard) {
      sink.Append(staged.day, staged.record);
      ++delivered;
    }
    shard.clear();
  }
  return delivered;
}

std::size_t ShardedCaptureBuffer::Buffered() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.size();
  return total;
}

}  // namespace tlsharm::scanner
