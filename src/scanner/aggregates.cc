#include "scanner/aggregates.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "tls/constants.h"
#include "util/crc32.h"
#include "util/durable.h"

namespace tlsharm::scanner {
namespace {

// Domain-flag vectors are bounded by the simulated Internet's roster; a
// checkpoint claiming more is corrupt (or from another study).
constexpr std::uint64_t kMaxDomains = 1u << 28;

void AppendBitmap(Bytes& out, const std::vector<std::uint8_t>& flags) {
  for (std::size_t i = 0; i < flags.size(); i += 8) {
    std::uint8_t packed = 0;
    for (std::size_t b = 0; b < 8 && i + b < flags.size(); ++b) {
      if (flags[i + b] != 0) packed |= static_cast<std::uint8_t>(1u << b);
    }
    out.push_back(packed);
  }
}

bool ReadBitmap(ByteView in, std::size_t& off, std::size_t count,
                std::vector<std::uint8_t>* flags) {
  const std::size_t bytes = (count + 7) / 8;
  if (in.size() - off < bytes) return false;
  flags->assign(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    (*flags)[i] = (in[off + i / 8] >> (i % 8)) & 1;
  }
  off += bytes;
  return true;
}

bool ReadWholeFile(const std::string& path, Bytes* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream content;
  content << in.rdbuf();
  const std::string data = content.str();
  out->assign(data.begin(), data.end());
  return true;
}

}  // namespace

void ScanAggregates::Mark(std::vector<std::uint8_t>& flags,
                          DomainIndex domain) {
  if (flags.size() <= domain) flags.resize(domain + 1, 0);
  flags[domain] = 1;
}

void ScanAggregates::Fold(int day, const HandshakeObservation& obs) {
  // Suite dispatch (see header): DHE suite <=> the engine's DHE-only pass.
  if (obs.suite == tls::CipherSuite::kDheWithAes128CbcSha256) {
    if (obs.handshake_ok && obs.kex_value != kNoSecret) {
      Mark(ever_dhe_, obs.domain);
      dhe_spans_.Observe(obs.domain, obs.kex_value, day);
    }
    return;
  }
  if (!obs.handshake_ok) return;
  if (obs.trusted) Mark(ever_trusted_, obs.domain);
  if (obs.ticket_issued) {
    Mark(ever_ticket_, obs.domain);
    stek_spans_.Observe(obs.domain, obs.stek_id, day);
  }
  if (obs.suite == tls::CipherSuite::kEcdheWithAes128CbcSha256 &&
      obs.kex_value != kNoSecret) {
    Mark(ever_ecdhe_, obs.domain);
    ecdhe_spans_.Observe(obs.domain, obs.kex_value, day);
  }
}

void ScanAggregates::CompleteDay(int day) {
  if (day >= next_day_) next_day_ = day + 1;
}

DailyScanResult ScanAggregates::Finish(const simnet::Internet& net) const {
  DailyScanResult result;
  result.stek_spans = stek_spans_;
  result.ecdhe_spans = ecdhe_spans_;
  result.dhe_spans = dhe_spans_;
  const auto ever = [](const std::vector<std::uint8_t>& flags,
                       simnet::DomainId id) {
    return id < flags.size() && flags[id] != 0;
  };
  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    // Column accessors: Finish sweeps the whole population, and a
    // million-domain sweep must not materialize a DomainInfo per row.
    if (!net.DomainStable(id) || !net.DomainHttps(id) ||
        !ever(ever_trusted_, id)) {
      continue;
    }
    result.core_domains.push_back(id);
    result.core_ever_ticket += ever(ever_ticket_, id) ? 1 : 0;
    result.core_ever_ecdhe += ever(ever_ecdhe_, id) ? 1 : 0;
    result.core_ever_dhe_connect += ever(ever_dhe_, id) ? 1 : 0;
    if (ever(ever_ticket_, id) || ever(ever_ecdhe_, id) ||
        ever(ever_dhe_, id)) {
      ++result.core_any_mechanism;
    }
  }
  return result;
}

void ScanAggregates::EncodeState(Bytes& out) const {
  AppendVarint(out, static_cast<std::uint64_t>(next_day_));
  stek_spans_.EncodeState(out);
  ecdhe_spans_.EncodeState(out);
  dhe_spans_.EncodeState(out);
  // All four bitmaps share one length: the widest vector.
  std::size_t count = ever_ticket_.size();
  count = std::max(count, ever_ecdhe_.size());
  count = std::max(count, ever_dhe_.size());
  count = std::max(count, ever_trusted_.size());
  AppendVarint(out, count);
  const std::vector<std::uint8_t>* bitmaps[] = {&ever_ticket_, &ever_ecdhe_,
                                                &ever_dhe_, &ever_trusted_};
  for (const auto* flags : bitmaps) {
    std::vector<std::uint8_t> padded = *flags;
    padded.resize(count, 0);
    AppendBitmap(out, padded);
  }
}

bool ScanAggregates::DecodeState(ByteView in, std::size_t& off) {
  std::uint64_t next_day = 0;
  if (!ReadVarint(in, off, next_day) || next_day > 0x10000) return false;
  if (!stek_spans_.DecodeState(in, off)) return false;
  if (!ecdhe_spans_.DecodeState(in, off)) return false;
  if (!dhe_spans_.DecodeState(in, off)) return false;
  std::uint64_t count = 0;
  if (!ReadVarint(in, off, count) || count > kMaxDomains) return false;
  std::vector<std::uint8_t>* bitmaps[] = {&ever_ticket_, &ever_ecdhe_,
                                          &ever_dhe_, &ever_trusted_};
  for (auto* flags : bitmaps) {
    if (!ReadBitmap(in, off, static_cast<std::size_t>(count), flags)) {
      return false;
    }
  }
  next_day_ = static_cast<int>(next_day);
  return true;
}

std::string CheckpointFileName(int day) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%05d.bin", day);
  return buf;
}

bool WriteCheckpoint(const std::string& dir, int day,
                     const ScanAggregates& aggregates, std::string* error) {
  Bytes bytes;
  bytes.insert(bytes.end(), kScanCheckpointMagic, kScanCheckpointMagic + 4);
  bytes.push_back(kScanCheckpointVersion);
  aggregates.EncodeState(bytes);
  const std::uint32_t crc = Crc32(bytes);
  for (int shift = 24; shift >= 0; shift -= 8) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> shift));
  }
  const std::string path = dir + "/" + CheckpointFileName(day);
  return DurableWriteFile(path, bytes, error);
}

bool ReadCheckpoint(const std::string& dir, int day,
                    ScanAggregates* aggregates, std::string* error) {
  const std::string path = dir + "/" + CheckpointFileName(day);
  Bytes bytes;
  if (!ReadWholeFile(path, &bytes, error)) return false;
  if (bytes.size() < 9) {
    if (error != nullptr) *error = path + ": truncated checkpoint";
    return false;
  }
  if (!std::equal(kScanCheckpointMagic, kScanCheckpointMagic + 4,
                  bytes.begin())) {
    if (error != nullptr) *error = path + ": bad checkpoint magic";
    return false;
  }
  const std::size_t body = bytes.size() - 4;
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    stored = (stored << 8) | bytes[body + i];
  }
  if (Crc32(ByteView(bytes.data(), body)) != stored) {
    if (error != nullptr) *error = path + ": checksum mismatch";
    return false;
  }
  if (bytes[4] != kScanCheckpointVersion) {
    if (error != nullptr) {
      *error = path + ": unsupported checkpoint version " +
               std::to_string(static_cast<int>(bytes[4]));
    }
    return false;
  }
  std::size_t off = 5;
  ScanAggregates decoded;
  if (!decoded.DecodeState(ByteView(bytes.data(), body), off) ||
      off != body) {
    if (error != nullptr) *error = path + ": malformed checkpoint state";
    return false;
  }
  if (decoded.NextDay() != day + 1) {
    if (error != nullptr) *error = path + ": checkpoint day disagrees";
    return false;
  }
  *aggregates = std::move(decoded);
  return true;
}

}  // namespace tlsharm::scanner
