// Experiment drivers reproducing the paper's measurements.
//
// Each function replays one of the paper's scanning campaigns against the
// simulated Internet over virtual time and returns the raw material its
// table or figure is built from. The bench binaries format the results and
// print paper-vs-measured comparisons.
#pragma once

#include <array>
#include <vector>

#include "analysis/spans.h"
#include "scanner/prober.h"
#include "simnet/internet.h"

namespace tlsharm::scanner {

// --- Scan robustness ---------------------------------------------------------
// How the daily-scan drivers cope with a lossy network: a per-probe retry
// policy, plus an end-of-pass requeue that gives every transport-failed
// target one more scan later the same day (the real scans' "retry the
// unreachable tail" pass).
struct ScanRobustness {
  RetryPolicy retry;
  bool requeue_failures = true;
  SimTime requeue_delay = 4 * kHour;  // main pass -> requeue pass gap
};

// Per-day loss accounting. `scheduled` counts probes issued in the main
// pass; a probe is `lost` only if it still ends in a transport failure
// after retries and the requeue pass — deliberate answers (alerts,
// untrusted chains, no HTTPS) are never loss.
struct DayLoss {
  std::size_t scheduled = 0;
  std::size_t recovered = 0;  // failed the main pass, answered on requeue
  std::size_t lost = 0;
  std::array<std::size_t, kProbeFailureClasses> lost_by_class{};

  double LossRate() const {
    return scheduled == 0 ? 0.0
                          : static_cast<double>(lost) /
                                static_cast<double>(scheduled);
  }
};

// --- Table 1: support for forward secrecy and resumption -------------------
struct SupportCounts {
  std::size_t list_size = 0;       // domains scanned
  std::size_t trusted = 0;         // browser-trusted TLS domains
  std::size_t supported = 0;       // completed the restricted handshake /
                                   // issued a session ticket
  std::size_t reuse_twice = 0;     // >= 2 of the connections shared a value
  std::size_t reuse_all = 0;       // all connections shared one value
};

// Runs `connections` back-to-back probes per domain on `day`, counting
// repeated server KEX values (kDheOnly / kEcdheOnly) — the Table 1 rows.
SupportCounts MeasureKexSupport(simnet::Internet& net, int day,
                                CipherSelection selection, int connections,
                                std::uint64_t seed);

// Same, for session tickets: counts repeated STEK identifiers.
SupportCounts MeasureTicketSupport(simnet::Internet& net, int day,
                                   int connections, std::uint64_t seed);

// --- Figures 1 & 2: resumption lifetimes ------------------------------------
struct LifetimeMeasurement {
  DomainIndex domain = 0;
  SimTime max_delay = 0;            // longest successful resumption delay
  std::uint32_t lifetime_hint = 0;  // ticket experiments only
};

struct ResumptionLifetimeResult {
  std::size_t trusted_https = 0;  // denominator: trusted HTTPS domains
  std::size_t indicated = 0;      // set a session ID / issued a ticket
  std::size_t resumed_1s = 0;     // resumed after one second
  std::vector<LifetimeMeasurement> lifetimes;  // for resumed_1s domains
};

// Initial handshake on `day`, resumption at +1s, then every `step` until
// failure or `max_delay` — §4.1's method. `sample_fraction` scans a random
// subset (the paper restricted multi-connection experiments to a subset).
ResumptionLifetimeResult MeasureSessionIdLifetime(
    simnet::Internet& net, int day, std::uint64_t seed,
    SimTime max_delay = 24 * kHour, SimTime step = 5 * kMinute,
    double sample_fraction = 1.0);

ResumptionLifetimeResult MeasureTicketLifetime(
    simnet::Internet& net, int day, std::uint64_t seed,
    SimTime max_delay = 24 * kHour, SimTime step = 5 * kMinute,
    double sample_fraction = 1.0);

// --- Daily scans: Figures 3–5, Tables 2–4 -----------------------------------
struct DailyScanResult {
  analysis::SpanTracker stek_spans{8};
  analysis::SpanTracker ecdhe_spans{8};
  analysis::SpanTracker dhe_spans{8};

  // Domains that stayed in the Top-N all study and presented a trusted
  // certificate (the paper's 291,643).
  std::vector<DomainIndex> core_domains;
  // Of core domains: ever issued a ticket / completed (EC)DHE / connected
  // with DHE-only offer.
  std::size_t core_ever_ticket = 0;
  std::size_t core_ever_ecdhe = 0;
  std::size_t core_ever_dhe_connect = 0;
  std::size_t core_any_mechanism = 0;

  // One entry per scanned day (empty classes on a fault-free network).
  std::vector<DayLoss> loss;
};

DailyScanResult RunDailyScans(simnet::Internet& net, int days,
                              std::uint64_t seed,
                              const ScanRobustness& robustness = {});

// --- §5: service groups ------------------------------------------------------
struct GroupsResult {
  // Groups over participating domains, largest first.
  std::vector<std::vector<DomainIndex>> groups;
  std::size_t participants = 0;
};

// §5.1: cross-domain session-ID resumption with <=5 co-AS and <=5 co-IP
// candidates per domain, transitively grown.
GroupsResult MeasureSessionCacheGroups(simnet::Internet& net, int day,
                                       std::uint64_t seed,
                                       int as_candidates = 5,
                                       int ip_candidates = 5);

// §5.2: domains sharing a STEK id across `connections` probes in a window.
GroupsResult MeasureStekGroups(simnet::Internet& net, int day,
                               std::uint64_t seed, int connections = 10,
                               SimTime window = 6 * kHour);

// §5.3: domains sharing a DHE or ECDHE value.
GroupsResult MeasureKexGroups(simnet::Internet& net, int day,
                              std::uint64_t seed, int connections = 10,
                              SimTime window = 5 * kHour);

// --- §3: dataset churn --------------------------------------------------------
struct ChurnStats {
  std::size_t unique_domains = 0;    // ever listed during the study
  std::size_t always_listed = 0;
  std::size_t few_polls = 0;         // listed on <= 7 days
  double mean_daily_list = 0;        // average daily list size
  std::size_t always_https = 0;      // of always_listed: ever HTTPS
  std::size_t always_trusted = 0;    // ... ever trusted
};

ChurnStats MeasureChurn(simnet::Internet& net, int days);

}  // namespace tlsharm::scanner
