#include "scanner/experiments.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "analysis/groups.h"
#include "scanner/scan_engine.h"

namespace tlsharm::scanner {
namespace {

SimTime DayStart(int day) { return day * kDay + 6 * kHour; }

bool TrustedHttps(const simnet::DomainInfo& info) {
  return info.https && info.trusted_cert;
}

}  // namespace

SupportCounts MeasureKexSupport(simnet::Internet& net, int day,
                                CipherSelection selection, int connections,
                                std::uint64_t seed) {
  Prober prober(net, seed);
  SupportCounts counts;
  const SimTime base = DayStart(day);
  ProbeOptions options;
  options.ciphers = selection;
  options.kex_only = true;  // the KEX value is all this experiment needs
  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    if (!net.InTopListOnDay(id, day)) continue;
    ++counts.list_size;
    const auto& info = net.GetDomain(id);
    if (!TrustedHttps(info)) continue;
    ++counts.trusted;

    std::unordered_set<SecretId> values;
    std::size_t repeats = 0;
    std::size_t successes = 0;
    for (int c = 0; c < connections; ++c) {
      const auto result =
          prober.Probe(id, base + c, options);  // back-to-back seconds
      if (!result.observation.handshake_ok) continue;
      ++successes;
      if (result.observation.kex_value == kNoSecret) continue;
      if (!values.insert(result.observation.kex_value).second) ++repeats;
    }
    if (successes > 0) ++counts.supported;
    if (repeats > 0) ++counts.reuse_twice;
    if (successes == static_cast<std::size_t>(connections) &&
        values.size() == 1 && successes > 1) {
      ++counts.reuse_all;
    }
  }
  return counts;
}

SupportCounts MeasureTicketSupport(simnet::Internet& net, int day,
                                   int connections, std::uint64_t seed) {
  Prober prober(net, seed);
  SupportCounts counts;
  const SimTime base = DayStart(day);
  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    if (!net.InTopListOnDay(id, day)) continue;
    ++counts.list_size;
    const auto& info = net.GetDomain(id);
    if (!TrustedHttps(info)) continue;
    ++counts.trusted;

    std::unordered_set<SecretId> steks;
    std::size_t repeats = 0;
    std::size_t issued = 0;
    for (int c = 0; c < connections; ++c) {
      const auto result = prober.Probe(id, base + c);
      if (!result.observation.ticket_issued ||
          result.observation.stek_id == kNoSecret) {
        continue;
      }
      ++issued;
      if (!steks.insert(result.observation.stek_id).second) ++repeats;
    }
    if (issued > 0) ++counts.supported;
    if (repeats > 0) ++counts.reuse_twice;
    if (issued == static_cast<std::size_t>(connections) &&
        steks.size() == 1 && issued > 1) {
      ++counts.reuse_all;
    }
  }
  return counts;
}

namespace {

// Shared engine for the Figure 1 / Figure 2 experiments.
ResumptionLifetimeResult MeasureResumptionLifetime(
    simnet::Internet& net, int day, std::uint64_t seed, SimTime max_delay,
    SimTime step, double sample_fraction, bool via_ticket) {
  Prober prober(net, seed);
  Rng sampler(seed ^ 0x5eed);
  ResumptionLifetimeResult result;
  const SimTime base = DayStart(day);

  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    if (!net.InTopListOnDay(id, day)) continue;
    const auto& info = net.GetDomain(id);
    if (!TrustedHttps(info)) continue;
    if (sample_fraction < 1.0 && !sampler.Bernoulli(sample_fraction)) {
      continue;
    }
    ++result.trusted_https;

    ProbeOptions options;
    options.want_full_result = true;
    const ProbeResult initial = prober.Probe(id, base, options);
    if (!initial.observation.handshake_ok) continue;

    const bool indicated = via_ticket ? initial.observation.ticket_issued
                                      : initial.observation.session_id_set;
    if (!indicated) continue;
    ++result.indicated;

    auto attempt = [&](SimTime delay) {
      return via_ticket
                 ? prober.TryResumeTicket(initial.session, id, base + delay)
                 : prober.TryResumeId(initial.session, id, base + delay);
    };

    if (!attempt(kSecond)) continue;
    ++result.resumed_1s;

    // Retry every `step` until failure or the 24-hour cap; record the last
    // success. (The paper keeps using the ORIGINAL ticket even when the
    // server reissues — TryResumeTicket always presents initial.session.)
    SimTime best = kSecond;
    for (SimTime delay = step; delay <= max_delay; delay += step) {
      if (!attempt(delay)) break;
      best = delay;
    }
    result.lifetimes.push_back(LifetimeMeasurement{
        id, best, initial.observation.ticket_lifetime_hint});
  }
  return result;
}

}  // namespace

ResumptionLifetimeResult MeasureSessionIdLifetime(
    simnet::Internet& net, int day, std::uint64_t seed, SimTime max_delay,
    SimTime step, double sample_fraction) {
  return MeasureResumptionLifetime(net, day, seed, max_delay, step,
                                   sample_fraction, /*via_ticket=*/false);
}

ResumptionLifetimeResult MeasureTicketLifetime(
    simnet::Internet& net, int day, std::uint64_t seed, SimTime max_delay,
    SimTime step, double sample_fraction) {
  return MeasureResumptionLifetime(net, day, seed, max_delay, step,
                                   sample_fraction, /*via_ticket=*/true);
}

DailyScanResult RunDailyScans(simnet::Internet& net, int days,
                              std::uint64_t seed,
                              const ScanRobustness& robustness) {
  // The serial scanner IS the sharded engine at one thread: same canonical
  // order, same probe times, same aggregation — just no workers spawned.
  ScanEngineOptions options;
  options.threads = 1;
  options.robustness = robustness;
  return RunShardedDailyScans(net, days, seed, options);
}

GroupsResult MeasureSessionCacheGroups(simnet::Internet& net, int day,
                                       std::uint64_t seed, int as_candidates,
                                       int ip_candidates) {
  Prober prober(net, seed);
  Rng rng(seed ^ 0xca5e);
  analysis::ServiceGroupBuilder builder(net.DomainCount());
  const SimTime base = DayStart(day);

  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    if (!net.InTopListOnDay(id, day)) continue;
    const auto& info = net.GetDomain(id);
    if (!TrustedHttps(info)) continue;

    ProbeOptions options;
    options.want_full_result = true;
    const ProbeResult initial = prober.Probe(id, base, options);
    if (!initial.observation.handshake_ok ||
        !initial.observation.session_id_set) {
      continue;
    }
    // Domain participates only if it resumes its own sessions.
    if (!prober.TryResumeId(initial.session, id, base + kSecond)) continue;
    builder.ObserveMember(id);

    // Sample candidates sharing the AS and the IP.
    auto sample = [&](std::vector<simnet::DomainId> pool, int want) {
      std::vector<simnet::DomainId> picked;
      // Partial Fisher-Yates over the pool.
      for (int i = 0; i < want && !pool.empty(); ++i) {
        const std::size_t j = rng.UniformInt(pool.size());
        const simnet::DomainId candidate = pool[j];
        pool[j] = pool.back();
        pool.pop_back();
        if (candidate != id && net.InTopListOnDay(candidate, day) &&
            TrustedHttps(net.GetDomain(candidate))) {
          picked.push_back(candidate);
        }
      }
      return picked;
    };

    for (const simnet::DomainId candidate :
         sample(net.DomainsInAs(info.as_number), as_candidates)) {
      // Transitive growth: skip pairs already known connected.
      if (prober.TryResumeId(initial.session, candidate, base + 2)) {
        builder.ObserveLink(id, candidate);
      }
    }
    if (!info.endpoints.empty()) {
      const auto ip = net.IpOf(net.EndpointFor(id, base));
      for (const simnet::DomainId candidate :
           sample(net.DomainsOnIp(ip), ip_candidates)) {
        if (prober.TryResumeId(initial.session, candidate, base + 3)) {
          builder.ObserveLink(id, candidate);
        }
      }
    }
  }
  GroupsResult result;
  result.participants = builder.MemberCount();
  result.groups = builder.Groups();
  return result;
}

GroupsResult MeasureStekGroups(simnet::Internet& net, int day,
                               std::uint64_t seed, int connections,
                               SimTime window) {
  Prober prober(net, seed);
  analysis::ServiceGroupBuilder builder(net.DomainCount());
  const SimTime base = DayStart(day);
  const SimTime stride =
      connections > 1 ? window / (connections - 1) : window;

  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    if (!net.InTopListOnDay(id, day)) continue;
    if (!TrustedHttps(net.GetDomain(id))) continue;
    bool issued = false;
    for (int c = 0; c < connections; ++c) {
      const auto probe = prober.Probe(id, base + c * stride);
      if (probe.observation.ticket_issued &&
          probe.observation.stek_id != kNoSecret) {
        issued = true;
        builder.ObserveSecret(probe.observation.stek_id, id);
      }
    }
    if (issued) builder.ObserveMember(id);
  }
  GroupsResult result;
  result.participants = builder.MemberCount();
  result.groups = builder.Groups();
  return result;
}

GroupsResult MeasureKexGroups(simnet::Internet& net, int day,
                              std::uint64_t seed, int connections,
                              SimTime window) {
  Prober prober(net, seed);
  analysis::ServiceGroupBuilder builder(net.DomainCount());
  const SimTime base = DayStart(day);
  const SimTime stride =
      connections > 1 ? window / (connections - 1) : window;

  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    if (!net.InTopListOnDay(id, day)) continue;
    if (!TrustedHttps(net.GetDomain(id))) continue;
    bool any = false;
    for (const CipherSelection selection :
         {CipherSelection::kDheOnly, CipherSelection::kEcdheOnly}) {
      ProbeOptions options;
      options.ciphers = selection;
      options.kex_only = true;
      for (int c = 0; c < connections; ++c) {
        const auto probe = prober.Probe(id, base + c * stride, options);
        if (probe.observation.handshake_ok &&
            probe.observation.kex_value != kNoSecret) {
          any = true;
          builder.ObserveSecret(probe.observation.kex_value, id);
        }
      }
    }
    if (any) builder.ObserveMember(id);
  }
  GroupsResult result;
  result.participants = builder.MemberCount();
  result.groups = builder.Groups();
  return result;
}

ChurnStats MeasureChurn(simnet::Internet& net, int days) {
  ChurnStats stats;
  std::vector<int> days_listed(net.DomainCount(), 0);
  double total_daily = 0;
  for (int day = 0; day < days; ++day) {
    std::size_t today = 0;
    for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
      if (net.InTopListOnDay(id, day)) {
        ++days_listed[id];
        ++today;
      }
    }
    total_daily += static_cast<double>(today);
  }
  stats.mean_daily_list = total_daily / days;
  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    if (days_listed[id] == 0) continue;
    ++stats.unique_domains;
    if (days_listed[id] <= 7) ++stats.few_polls;
    if (days_listed[id] == days) {
      ++stats.always_listed;
      const auto& info = net.GetDomain(id);
      if (info.https) ++stats.always_https;
      if (info.https && info.trusted_cert) ++stats.always_trusted;
    }
  }
  return stats;
}

}  // namespace tlsharm::scanner
