// The daily-scan aggregate state, shared by three consumers that must agree
// byte for byte:
//
//   * the scan engine (scan_engine.cc) folds each observation the moment
//     the canonical merge reaches it;
//   * the warehouse's incremental fold (warehouse/fold.h) replays stored
//     observations through the SAME code, which is what makes "fold the
//     warehouse" reproduce "run the scan" exactly instead of by analogy;
//   * the campaign resume path (runlog.h, campaign/campaign.h) checkpoints
//     this state at every committed day and restores it on restart, so a
//     resumed study finishes with the identical DailyScanResult.
//
// Why one Fold() serves both engine passes: the engine's two probe passes
// are distinguishable from the stored suite alone. The main pass offers
// kEcdheAndStatic and can never negotiate the DHE suite; the DHE pass
// negotiates exactly kDheWithAes128CbcSha256 when it succeeds. Failed
// probes (handshake_ok == false) aggregate to nothing in either pass. So
// dispatching each observation on its suite replays the engine's main/DHE
// aggregation exactly, in the same canonical order.
#pragma once

#include <string>
#include <vector>

#include "analysis/spans.h"
#include "scanner/experiments.h"

namespace tlsharm::scanner {

class ScanAggregates {
 public:
  // Folds one observation of `day`. Days must be non-decreasing across
  // calls; callers fold whole days and then CompleteDay().
  void Fold(int day, const HandshakeObservation& obs);

  // Marks `day` fully folded; NextDay() becomes day + 1.
  void CompleteDay(int day);

  // First day this state still needs (0 for a fresh fold).
  int NextDay() const { return next_day_; }

  // Materializes the engine-equivalent result (loss left empty — the
  // per-day loss ledger is not derivable from observations; the engine and
  // the campaign checkpoint carry it separately). Core-domain accounting
  // needs the simulated Internet's domain roster, same as the live engine.
  DailyScanResult Finish(const simnet::Internet& net) const;

  // Checkpoint codec: EncodeState is deterministic (domains in index
  // order); DecodeState restores an equivalent state or returns false on
  // malformed input.
  void EncodeState(Bytes& out) const;
  bool DecodeState(ByteView in, std::size_t& off);

  // Direct access to the folded span trackers, for reports that need the
  // distributions without the core-domain accounting (obsq spans).
  const analysis::SpanTracker& StekSpans() const { return stek_spans_; }
  const analysis::SpanTracker& EcdheSpans() const { return ecdhe_spans_; }
  const analysis::SpanTracker& DheSpans() const { return dhe_spans_; }

 private:
  int next_day_ = 0;
  analysis::SpanTracker stek_spans_{8};
  analysis::SpanTracker ecdhe_spans_{8};
  analysis::SpanTracker dhe_spans_{8};
  // Grow-on-demand, indexed by DomainIndex (same flags the engine keeps).
  std::vector<std::uint8_t> ever_ticket_;
  std::vector<std::uint8_t> ever_ecdhe_;
  std::vector<std::uint8_t> ever_dhe_;
  std::vector<std::uint8_t> ever_trusted_;

  void Mark(std::vector<std::uint8_t>& flags, DomainIndex domain);
};

// Checkpoint files ("TLWC" | version | state | CRC-32 trailer), written
// with the durable temp+rename discipline (util/durable.h). The warehouse
// stores them as <dir>/ckpt-<day>.bin next to the day's segment; the
// campaign layer writes the identical bytes at each day commit, so a
// recorded warehouse always carries up-to-date incremental-fold state.
inline constexpr char kScanCheckpointMagic[4] = {'T', 'L', 'W', 'C'};
inline constexpr std::uint8_t kScanCheckpointVersion = 1;

std::string CheckpointFileName(int day);
bool WriteCheckpoint(const std::string& dir, int day,
                     const ScanAggregates& aggregates, std::string* error);
// False when the file is missing or malformed (aggregates unspecified
// then); the caller falls back to an older checkpoint or a cold fold.
bool ReadCheckpoint(const std::string& dir, int day,
                    ScanAggregates* aggregates, std::string* error);

}  // namespace tlsharm::scanner
