// The sharded daily-scan engine — the parallel driver behind the paper's
// nine-week scanning campaign.
//
// Each day's target list (canonical = permuted order, see schedule.h) is
// partitioned into contiguous shards, one worker thread per shard. Every
// worker owns a Prober seeded identically to the serial scanner's: probe
// outcomes are pure functions of (seed, domain, time, options), so WHICH
// worker runs a probe never changes what it observes. Workers stage their
// observations in per-shard buffers; after the join, the engine merges the
// shards back in canonical order before anything reaches the result sink
// or the aggregates. The output contract:
//
//   For a fixed (world, days, seed, robustness), the DailyScanResult and
//   every byte written to the sink are identical for ANY thread count.
//   threads == 1 runs inline on the calling thread and reproduces the
//   serial scanner exactly; RunDailyScans is now a thin wrapper over it.
//
// What makes the contract hold (see DESIGN.md "Parallel sharded scanning"):
//   * client randomness is derived per attempt, not drawn from a shared
//     sequential stream (prober.h);
//   * server-side randomness is derived per connection from the
//     ClientHello, and STEK/KEX state is selected by virtual time, not by
//     arrival order (server/);
//   * the merge step re-serializes shard results in permutation-index
//     order, so buffering hides any real-time interleaving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "scanner/aggregates.h"
#include "scanner/experiments.h"
#include "scanner/schedule.h"
#include "scanner/store.h"

namespace tlsharm::scanner {

// When the daily pass starts: 06:00 virtual on each study day (the same
// epoch RunDailyScans has used since the serial scanner).
inline SimTime ScanDayStart(int day) { return day * kDay + 6 * kHour; }

// The state a resumed campaign restores into the engine so a run that
// skips already-committed days finishes with the identical DailyScanResult
// and metrics a crash-free run would have produced. Skipping is sound
// because probe outcomes are pure functions of (seed, domain, time,
// options) and server state is derived from virtual time, never from probe
// arrival order — re-probing a committed day could not change any later
// day's observations.
struct ScanResumeState {
  ScanAggregates aggregates;   // folded state of days [0, start_day)
  std::vector<DayLoss> loss;   // those days' loss ledger, in day order
  // Cumulative scan-metrics snapshot (RenderSnapshot JSON) through the
  // last committed day; "" when the campaign ran without metering.
  std::string metrics_json;
};

// Day-granular commit callbacks for the campaign layer (journal + durable
// state writes). Both run on the merge thread, in canonical order, so any
// crash barriers they pass are deterministic at every thread count.
// Returning false aborts the study after the current day boundary — how a
// campaign driver surfaces an I/O failure out of the engine loop.
class CampaignHooks {
 public:
  virtual ~CampaignHooks() = default;
  // Before the day's first probe (and before any of its store output).
  virtual bool OnDayStarted(int day) = 0;
  // After the day's observations are fully appended, EndDay'd on the store
  // backends, and folded into `aggregates`; `loss` holds days [0, day] and
  // `metrics_json` the cumulative scan-metrics snapshot through this day.
  virtual bool OnDayCommitted(int day, const ScanAggregates& aggregates,
                              const std::vector<DayLoss>& loss,
                              const std::string& metrics_json) = 0;
};

// One per-day progress sample for long-campaign heartbeats
// (fleet_survey --progress). Delivered on the merge thread after the day's
// commit hooks ran; consumers may only write to stderr-style side channels
// — nothing here may feed a deterministic artifact.
struct ScanProgress {
  int day = 0;                     // day just committed (0-based)
  int days = 0;                    // total study days
  std::uint64_t targets = 0;       // domains scanned this day
  std::uint64_t day_probes = 0;    // probes executed this day (incl requeue)
  std::uint64_t total_probes = 0;  // cumulative probes this run
};

struct ScanEngineOptions {
  // Worker shards per day. 1 = inline serial (no threads spawned).
  int threads = 1;
  // Main-pass batch size: the day's target list is processed in contiguous
  // batches of this many targets, each sharded, probed, flushed and folded
  // before the next begins. Staging memory is therefore O(batch_size), not
  // O(targets) — what lets a million-domain day run in bounded RAM. The
  // canonical output stream is unaffected: batches are consumed in
  // permutation order and flushed batch-by-batch in shard order, which
  // concatenates to exactly the unbatched stream, so every artifact is
  // byte-identical for ANY batch size (and any thread count).
  // 0 = the TLSHARM_SCAN_BATCH environment knob, default 65536.
  std::size_t batch_size = 0;
  ScanRobustness robustness;
  // Optional exclusion rules; nullptr scans everything listed.
  const Blacklist* blacklist = nullptr;
  // Optional raw-observation store. Receives every main-pass and requeue
  // observation in canonical order (main/DHE interleaved per target, then
  // the requeue pass in pending order).
  ObservationWriter* sink = nullptr;
  // Optional streaming store backend (text file, columnar warehouse, ...).
  // Same canonical observation stream as `sink`, plus per-day EndDay and
  // end-of-study Finish hooks — this is how the warehouse closes one
  // columnar segment per completed virtual day. Both may be set at once;
  // the engine fans out to each.
  StoreWriter* store = nullptr;
  // Optional adversary recorder (attack::CaptureSink — e.g. the columnar
  // capture tape, warehouse/capture.h). When set, every probe connection is
  // tapped through attack::PassiveCapture and its CaptureRecord summary is
  // delivered in the SAME canonical order as the observation stream (main
  // pass in permutation order — main then DHE per target — then the
  // requeue pass), with EndDay/Finish mirroring the StoreWriter contract.
  // Capture bytes are therefore identical at any thread count. Recording
  // never changes an observation: the tap only mirrors wire flights.
  attack::CaptureSink* capture = nullptr;
  // Optional telemetry; both default off and neither changes a single byte
  // of the scan's observations. `metrics` receives the merged per-shard
  // probe counters, engine-level scan/requeue/loss counters, and an
  // end-of-study fleet sweep (CollectFleetMetrics). `trace` receives one
  // event per connection attempt in canonical (day, seq, attempt) order.
  // Both outputs are byte-identical for any `threads` value.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
  // Campaign resume: scan only days [start_day, days), restoring the
  // committed prefix from `resume` (required whenever start_day > 0). The
  // engine then behaves — result, store stream, metrics — as if it had
  // scanned every day itself.
  int start_day = 0;
  const ScanResumeState* resume = nullptr;
  // Optional per-day commit callbacks (see CampaignHooks). Setting hooks
  // enables internal metering even when `metrics` is null, so committed
  // snapshots are always available to the campaign layer.
  CampaignHooks* hooks = nullptr;
  // Optional per-day progress heartbeat (see ScanProgress). Informational
  // only; the engine's output contract is unchanged whether or not this is
  // set.
  std::function<void(const ScanProgress&)> progress;
};

// Worker count from the TLSHARM_THREADS environment knob (1..64,
// default 1).
int ScanThreadsFromEnv();

// Main-pass batch size from the TLSHARM_SCAN_BATCH environment knob
// (1..2^24, default 65536).
std::size_t ScanBatchFromEnv();

// Runs the paper's daily scans (main ECDHE+static probe plus DHE-only
// probe per listed HTTPS domain per day, with retries and an end-of-pass
// requeue) sharded across options.threads workers. See the determinism
// contract above.
DailyScanResult RunShardedDailyScans(simnet::Internet& net, int days,
                                     std::uint64_t seed,
                                     const ScanEngineOptions& options = {});

}  // namespace tlsharm::scanner
