// The sharded daily-scan engine — the parallel driver behind the paper's
// nine-week scanning campaign.
//
// Each day's target list (canonical = permuted order, see schedule.h) is
// partitioned into contiguous shards, one worker thread per shard. Every
// worker owns a Prober seeded identically to the serial scanner's: probe
// outcomes are pure functions of (seed, domain, time, options), so WHICH
// worker runs a probe never changes what it observes. Workers stage their
// observations in per-shard buffers; after the join, the engine merges the
// shards back in canonical order before anything reaches the result sink
// or the aggregates. The output contract:
//
//   For a fixed (world, days, seed, robustness), the DailyScanResult and
//   every byte written to the sink are identical for ANY thread count.
//   threads == 1 runs inline on the calling thread and reproduces the
//   serial scanner exactly; RunDailyScans is now a thin wrapper over it.
//
// What makes the contract hold (see DESIGN.md "Parallel sharded scanning"):
//   * client randomness is derived per attempt, not drawn from a shared
//     sequential stream (prober.h);
//   * server-side randomness is derived per connection from the
//     ClientHello, and STEK/KEX state is selected by virtual time, not by
//     arrival order (server/);
//   * the merge step re-serializes shard results in permutation-index
//     order, so buffering hides any real-time interleaving.
#pragma once

#include <cstddef>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "scanner/experiments.h"
#include "scanner/schedule.h"
#include "scanner/store.h"

namespace tlsharm::scanner {

// When the daily pass starts: 06:00 virtual on each study day (the same
// epoch RunDailyScans has used since the serial scanner).
inline SimTime ScanDayStart(int day) { return day * kDay + 6 * kHour; }

struct ScanEngineOptions {
  // Worker shards per day. 1 = inline serial (no threads spawned).
  int threads = 1;
  ScanRobustness robustness;
  // Optional exclusion rules; nullptr scans everything listed.
  const Blacklist* blacklist = nullptr;
  // Optional raw-observation store. Receives every main-pass and requeue
  // observation in canonical order (main/DHE interleaved per target, then
  // the requeue pass in pending order).
  ObservationWriter* sink = nullptr;
  // Optional streaming store backend (text file, columnar warehouse, ...).
  // Same canonical observation stream as `sink`, plus per-day EndDay and
  // end-of-study Finish hooks — this is how the warehouse closes one
  // columnar segment per completed virtual day. Both may be set at once;
  // the engine fans out to each.
  StoreWriter* store = nullptr;
  // Optional telemetry; both default off and neither changes a single byte
  // of the scan's observations. `metrics` receives the merged per-shard
  // probe counters, engine-level scan/requeue/loss counters, and an
  // end-of-study fleet sweep (CollectFleetMetrics). `trace` receives one
  // event per connection attempt in canonical (day, seq, attempt) order.
  // Both outputs are byte-identical for any `threads` value.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
};

// Worker count from the TLSHARM_THREADS environment knob (1..64,
// default 1).
int ScanThreadsFromEnv();

// Runs the paper's daily scans (main ECDHE+static probe plus DHE-only
// probe per listed HTTPS domain per day, with retries and an end-of-pass
// requeue) sharded across options.threads workers. See the determinism
// contract above.
DailyScanResult RunShardedDailyScans(simnet::Internet& net, int days,
                                     std::uint64_t seed,
                                     const ScanEngineOptions& options = {});

}  // namespace tlsharm::scanner
