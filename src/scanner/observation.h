// What the scanner records per connection — the on-the-wire observables the
// paper's analysis consumes. Secret-valued fields (session IDs, STEK ids,
// KEX values) are folded to 64-bit fingerprints for compact storage; all
// grouping/longevity analysis only ever compares them for equality.
#pragma once

#include <cstdint>

#include "tls/constants.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace tlsharm::scanner {

using DomainIndex = std::uint32_t;

// 64-bit fingerprint of a secret identifier (STEK id, KEX value, ...).
using SecretId = std::uint64_t;
inline constexpr SecretId kNoSecret = 0;

inline SecretId FingerprintSecret(ByteView bytes) {
  if (bytes.empty()) return kNoSecret;
  // FNV over bytes finished with splitmix; never returns kNoSecret.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  const std::uint64_t mixed = [](std::uint64_t x) {
    std::uint64_t s = x;
    return SplitMix64(s);
  }(h);
  return mixed == kNoSecret ? 1 : mixed;
}

// Why a probe failed — the paper's §3 accounting of unreachable hosts made
// explicit. Every probe outcome maps to exactly one class; kNone means the
// handshake completed against a browser-trusted chain.
enum class ProbeFailure : std::uint8_t {
  kNone = 0,    // completed handshake, trusted chain
  kNoHttps,     // the domain does not serve HTTPS at all
  kRefused,     // TCP connect refused
  kTimeout,     // connect timed out (slow host or transient outage)
  kReset,       // connection reset mid-handshake
  kMalformed,   // truncated/corrupted/protocol-violating server flight
  kAlert,       // the server answered but aborted deliberately
  kUntrusted,   // handshake completed, chain does not verify
};

inline constexpr int kProbeFailureClasses = 8;

inline std::string_view ToString(ProbeFailure failure) {
  switch (failure) {
    case ProbeFailure::kNone: return "ok";
    case ProbeFailure::kNoHttps: return "no_https";
    case ProbeFailure::kRefused: return "refused";
    case ProbeFailure::kTimeout: return "timeout";
    case ProbeFailure::kReset: return "reset";
    case ProbeFailure::kMalformed: return "malformed";
    case ProbeFailure::kAlert: return "alert";
    case ProbeFailure::kUntrusted: return "untrusted";
  }
  return "?";
}

// Transport-level failures are the retryable/lossy ones; alerts, untrusted
// chains and plain-HTTP domains are answers, not loss.
inline bool IsTransportFailure(ProbeFailure failure) {
  return failure == ProbeFailure::kRefused ||
         failure == ProbeFailure::kTimeout ||
         failure == ProbeFailure::kReset ||
         failure == ProbeFailure::kMalformed;
}

struct HandshakeObservation {
  DomainIndex domain = 0;
  SimTime time = 0;

  bool connected = false;      // TCP/443 answered
  bool handshake_ok = false;
  bool trusted = false;        // chain validates to the NSS-like store

  // Exactly one class per probe outcome; kNoHttps until a prober fills it.
  ProbeFailure failure = ProbeFailure::kNoHttps;
  std::uint8_t attempts = 0;   // connection attempts the probe consumed

  tls::CipherSuite suite{};
  std::uint16_t kex_group = 0;
  SecretId kex_value = kNoSecret;   // server's (EC)DHE public value

  bool session_id_set = false;      // ServerHello carried a session ID
  SecretId session_id = kNoSecret;

  bool ticket_issued = false;
  std::uint32_t ticket_lifetime_hint = 0;
  SecretId stek_id = kNoSecret;     // extracted from the ticket
};

}  // namespace tlsharm::scanner
