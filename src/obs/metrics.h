// Deterministic metrics for the scan pipeline: named counters, gauges, and
// fixed-bucket histograms collected into a MetricsRegistry.
//
// The registry is built for the sharded scan engine's determinism contract
// (scan_engine.h): it is deliberately NOT thread-safe. Each worker shard
// owns a private registry; after the join, the engine merges the shard
// registries into the caller's in canonical shard order. Because merging is
// commutative per metric kind — counters and histogram buckets add, gauges
// take the maximum — and every value is derived from virtual time or probe
// outcomes (never wall clock), the merged snapshot is byte-identical for
// any thread count. Execution-shape quantities (thread count, shard count,
// wall-clock durations) are intentionally unrepresentable here; benches
// record those separately in BENCH_*.json.
//
// All histogram/gauge values are 64-bit integers (virtual-time seconds or
// counts): integer accumulation keeps merges exact, with no floating-point
// order sensitivity.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tlsharm::obs {

// Monotone event count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t Value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Last-known level. Merging takes the maximum, the only order-independent
// choice; set gauges from the merge thread when the level is global.
class Gauge {
 public:
  void Set(std::int64_t v) { value_ = v; }
  void Max(std::int64_t v) {
    if (v > value_) value_ = v;
  }
  std::int64_t Value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

struct HistogramSnapshot;

// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
// order, with an implicit +inf overflow bucket (counts has bounds.size()+1
// entries). Buckets are fixed at creation so shard registries always agree
// and merges are plain vector adds.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void Observe(std::int64_t value);
  void ObserveN(std::int64_t value, std::uint64_t n);

  const std::vector<std::int64_t>& Bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& Counts() const { return counts_; }
  std::int64_t Sum() const { return sum_; }
  std::uint64_t Count() const { return count_; }

  // Adds another histogram with identical bounds (asserted).
  void MergeFrom(const Histogram& other);
  // Adds a serialized histogram back in (bounds must match); how the
  // campaign resume path restores counts from a committed snapshot.
  void MergeFrom(const HistogramSnapshot& other);

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 entries
  std::int64_t sum_ = 0;
  std::uint64_t count_ = 0;
};

// A point-in-time, serializable copy of a registry.
struct HistogramSnapshot {
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> counts;
  std::int64_t sum = 0;
  std::uint64_t count = 0;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

// Canonical one-line JSON rendering: keys sorted (std::map order), integers
// only, no whitespace. Byte-stable: equal snapshots render equal bytes.
std::string RenderSnapshot(const MetricsSnapshot& snapshot);

// Parses RenderSnapshot output (and any JSON matching its schema). Returns
// false on syntax or schema mismatch. ParseSnapshot(RenderSnapshot(s)) == s.
bool ParseSnapshot(std::string_view text, MetricsSnapshot& out);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returned references are stable for the registry's lifetime (node-based
  // storage), so hot paths resolve a name once and bump the handle.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  // `bounds` apply on first creation; later calls with the same name return
  // the existing histogram unchanged.
  Histogram& GetHistogram(std::string_view name,
                          std::vector<std::int64_t> bounds);

  // Folds `other` in: counters and histograms add, gauges take the max.
  // Commutative and associative, so shard merge order cannot matter.
  void MergeFrom(const MetricsRegistry& other);
  // Folds a parsed snapshot back in with the same merge semantics — the
  // inverse of SnapshotJson() that lets a resumed campaign continue its
  // counters exactly where the last committed day left them.
  void MergeFrom(const MetricsSnapshot& snapshot);

  bool Empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  MetricsSnapshot Snapshot() const;
  std::string SnapshotJson() const { return RenderSnapshot(Snapshot()); }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// The TLSHARM_METRICS environment knob: the path a tool should write its
// metrics snapshot to, or "" when telemetry is off (the default).
std::string MetricsPathFromEnv();

}  // namespace tlsharm::obs
