// Offline side of the wall-clock performance plane: quantile estimation
// over prof.h's log-bucketed histograms, the aggregated text report behind
// `tlsharm-prof` / `scanstats --prof`, the hotspot JSON committed into
// BENCH_prof.json, and a loader that folds a Chrome trace file back into a
// ProfSnapshot so the summarizer works on trace files from past runs.
//
// Everything here runs after the fact, on already-sealed data — nothing in
// this header is callable from a scan hot path.
#pragma once

#include <string>
#include <string_view>

#include "obs/prof.h"

namespace tlsharm::obs {

// Quantile estimate (q in [0,1]) from the span's log2 histogram, linearly
// interpolated inside the selected bucket [2^i, 2^(i+1)). Exact min/max are
// substituted at the extremes, so p0 == min_ns and p100 == max_ns.
double ProfQuantileNs(const ProfSpanStats& s, double q);

// The aggregated text report: hotspot table (count, total, self, self%,
// p50/p95/p99), shard-utilization table, and the attribution footer
// (share of root wall time claimed by named child spans).
std::string RenderProfReport(const ProfSnapshot& snap);

// Hotspot table as a JSON array (top `max_rows` spans by self time) for
// embedding in BENCH_prof.json via bench::JsonReport::AddRaw. Integer
// nanosecond fields only, so the document stays parseable by obs::ParseJson.
std::string RenderHotspotJson(const ProfSnapshot& snap, int max_rows);

// Share of total root wall time attributed to named non-root spans,
// in percent: 100 * (1 - root_self / root_total). 100 when no roots.
double ProfAttributedPct(const ProfSnapshot& snap);

// Parses a Chrome trace-event JSON document (the ProfChromeTraceJson
// schema: "ph":"X" complete events with pid/tid/ts/dur, plus "ph":"M"
// metadata) and folds the events back into per-span aggregates,
// reconstructing self-time by re-nesting each tid's intervals. Returns
// false with a message in `error` on malformed input. Used by
// `tlsharm-prof <trace.json>`.
bool LoadChromeTrace(std::string_view json, ProfSnapshot* out,
                     std::string* error);

}  // namespace tlsharm::obs
