#include "obs/prof.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace tlsharm::obs {
namespace {

// Per-thread buffered trace events are capped so a pathological span storm
// cannot exhaust memory; overflow is counted, never silently discarded.
constexpr std::size_t kMaxTraceEventsPerThread = std::size_t{1} << 20;

struct SiteInfo {
  const char* name;
  unsigned flags;
};

// Site registry. Sites register at static initialization (namespace-scope
// ProfSite objects in instrumented files), but lazily-constructed tools and
// tests may also register later, so growth stays mutex-guarded.
struct SiteRegistry {
  std::mutex mu;
  std::vector<SiteInfo> sites;
};

SiteRegistry& Sites() {
  static SiteRegistry* r = new SiteRegistry;  // leaked: outlives exit paths
  return *r;
}

struct SpanAgg {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::array<std::uint64_t, kProfBuckets> buckets{};
};

struct TraceEvent {
  std::uint32_t site;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

struct OpenSpan {
  std::uint32_t site;
  unsigned flags;  // copied from the site so End never locks the registry
  std::uint64_t start_ns;
  std::uint64_t child_ns;  // total time of directly-enclosed spans
};

// One recording buffer per thread; single-writer, appended to the global
// list on the owning thread's first span. Snapshot/reset walk the list
// under the registry mutex, which is safe per the header's post-join
// contract (the buffer's owner is no longer running).
struct ThreadBuf {
  std::vector<SpanAgg> aggs;  // indexed by site id; grown on demand
  std::vector<TraceEvent> events;
  std::vector<OpenSpan> stack;
  int track = 0;
  std::uint64_t dropped = 0;
  std::uint64_t root_total_ns = 0;
  std::uint64_t root_self_ns = 0;
};

struct BufRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  std::map<int, std::string> track_names;
  std::map<int, ProfTrackStats> track_stats;
};

BufRegistry& Bufs() {
  static BufRegistry* r = new BufRegistry;
  return *r;
}

thread_local ThreadBuf* t_buf = nullptr;

ThreadBuf& LocalBuf() {
  if (t_buf == nullptr) {
    auto owned = std::make_unique<ThreadBuf>();
    t_buf = owned.get();
    std::lock_guard<std::mutex> lock(Bufs().mu);
    Bufs().bufs.push_back(std::move(owned));
  }
  return *t_buf;
}

int BucketIndex(std::uint64_t ns) {
  int b = std::bit_width(ns | 1) - 1;
  return b < kProfBuckets ? b : kProfBuckets - 1;
}

bool EnvTraceEnabled() {
  const char* v = std::getenv("TLSHARM_PROF_TRACE");
  return v != nullptr && v[0] != '\0';
}

bool EnvProfEnabled() {
  const char* v = std::getenv("TLSHARM_PROF");
  if (v == nullptr || v[0] == '\0' || std::strcmp(v, "0") == 0) return false;
  return true;
}

std::atomic<bool> g_trace_enabled{EnvTraceEnabled()};

// Fixed-point microseconds with three decimals ("123.456") via integer
// math, so trace bytes are exact functions of the recorded nanoseconds —
// no printf double-rounding in the golden-tested output.
void AppendMicros(std::string& out, std::uint64_t ns) {
  char tmp[32];
  std::snprintf(tmp, sizeof(tmp), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += tmp;
}

// Span names are sourced from string literals in this codebase (plain
// ASCII identifiers), but escape the JSON-critical bytes anyway so a
// hostile name cannot corrupt the trace document.
void AppendJsonString(std::string& out, const char* s) {
  out += '"';
  for (const char* p = s; *p != '\0'; ++p) {
    unsigned char c = static_cast<unsigned char>(*p);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char tmp[8];
      std::snprintf(tmp, sizeof(tmp), "\\u%04x", c);
      out += tmp;
    } else {
      out += static_cast<char>(c);
    }
  }
  out += '"';
}

// "cat" groups spans by subsystem in the Perfetto UI: the name prefix
// before the first '.' ("scan.probe.main" -> "scan").
std::string SpanCategory(const char* name) {
  const char* dot = std::strchr(name, '.');
  if (dot == nullptr) return name;
  return std::string(name, static_cast<std::size_t>(dot - name));
}

}  // namespace

namespace prof_internal {

std::atomic<bool> g_enabled{EnvProfEnabled()};

void BeginSpanAt(const ProfSite& site, std::uint64_t now_ns) {
  ThreadBuf& buf = LocalBuf();
  buf.stack.push_back(OpenSpan{site.id, site.flags, now_ns, 0});
}

void EndSpanAt(std::uint64_t now_ns) {
  ThreadBuf& buf = LocalBuf();
  if (buf.stack.empty()) return;  // unmatched End: tolerate, never crash
  OpenSpan open = buf.stack.back();
  buf.stack.pop_back();
  std::uint64_t dur =
      now_ns >= open.start_ns ? now_ns - open.start_ns : 0;
  std::uint64_t self = dur >= open.child_ns ? dur - open.child_ns : 0;

  if (open.site >= buf.aggs.size()) buf.aggs.resize(open.site + 1);
  SpanAgg& agg = buf.aggs[open.site];
  if (agg.count == 0 || dur < agg.min_ns) agg.min_ns = dur;
  if (dur > agg.max_ns) agg.max_ns = dur;
  agg.count += 1;
  agg.total_ns += dur;
  agg.self_ns += self;
  agg.buckets[BucketIndex(dur)] += 1;

  if (!buf.stack.empty()) {
    buf.stack.back().child_ns += dur;
  } else {
    buf.root_total_ns += dur;
    buf.root_self_ns += self;
  }
  if ((open.flags & kProfNoTrace) == 0 &&
      g_trace_enabled.load(std::memory_order_relaxed)) {
    if (buf.events.size() < kMaxTraceEventsPerThread) {
      buf.events.push_back(TraceEvent{open.site, open.start_ns, dur});
    } else {
      buf.dropped += 1;
    }
  }
}

}  // namespace prof_internal

ProfSite::ProfSite(const char* name, unsigned site_flags) : flags(site_flags) {
  SiteRegistry& reg = Sites();
  std::lock_guard<std::mutex> lock(reg.mu);
  id = static_cast<std::uint32_t>(reg.sites.size());
  reg.sites.push_back(SiteInfo{name, site_flags});
}

void SetProfilingEnabled(bool enabled) {
  prof_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

bool ProfTraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void SetProfTraceEnabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::string ProfTracePathFromEnv() {
  const char* v = std::getenv("TLSHARM_PROF_TRACE");
  return v == nullptr ? std::string() : std::string(v);
}

std::uint64_t ProfNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ProfSetThreadTrack(int track, const char* name) {
  if (!ProfilingEnabled()) return;
  LocalBuf().track = track;
  std::lock_guard<std::mutex> lock(Bufs().mu);
  Bufs().track_names[track] = name;
}

void ProfRecordShardStall(int track, std::uint64_t busy_ns,
                          std::uint64_t stall_ns) {
  if (!ProfilingEnabled()) return;
  std::lock_guard<std::mutex> lock(Bufs().mu);
  ProfTrackStats& t = Bufs().track_stats[track];
  t.track = track;
  t.days += 1;
  t.busy_ns += busy_ns;
  t.stall_ns += stall_ns;
}

ProfSnapshot ProfSnapshotNow() {
  ProfSnapshot snap;
  std::vector<SiteInfo> sites;
  {
    std::lock_guard<std::mutex> lock(Sites().mu);
    sites = Sites().sites;
  }
  std::vector<SpanAgg> merged(sites.size());
  {
    std::lock_guard<std::mutex> lock(Bufs().mu);
    for (const auto& buf : Bufs().bufs) {
      snap.dropped_events += buf->dropped;
      snap.root_total_ns += buf->root_total_ns;
      snap.root_self_ns += buf->root_self_ns;
      for (std::size_t i = 0; i < buf->aggs.size() && i < merged.size();
           ++i) {
        const SpanAgg& a = buf->aggs[i];
        if (a.count == 0) continue;
        SpanAgg& m = merged[i];
        if (m.count == 0 || a.min_ns < m.min_ns) m.min_ns = a.min_ns;
        if (a.max_ns > m.max_ns) m.max_ns = a.max_ns;
        m.count += a.count;
        m.total_ns += a.total_ns;
        m.self_ns += a.self_ns;
        for (int b = 0; b < kProfBuckets; ++b) m.buckets[b] += a.buckets[b];
      }
    }
    for (const auto& [track, stats] : Bufs().track_stats) {
      ProfTrackStats t = stats;
      auto it = Bufs().track_names.find(track);
      if (it != Bufs().track_names.end()) t.name = it->second;
      snap.tracks.push_back(std::move(t));
    }
  }
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (merged[i].count == 0) continue;
    ProfSpanStats s;
    s.name = sites[i].name;
    s.flags = sites[i].flags;
    s.count = merged[i].count;
    s.total_ns = merged[i].total_ns;
    s.self_ns = merged[i].self_ns;
    s.min_ns = merged[i].min_ns;
    s.max_ns = merged[i].max_ns;
    s.buckets = merged[i].buckets;
    snap.spans.push_back(std::move(s));
  }
  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const ProfSpanStats& a, const ProfSpanStats& b) {
              return a.name < b.name;
            });
  return snap;
}

void ProfReset() {
  std::lock_guard<std::mutex> lock(Bufs().mu);
  for (auto& buf : Bufs().bufs) {
    buf->aggs.clear();
    buf->events.clear();
    buf->stack.clear();
    buf->dropped = 0;
    buf->root_total_ns = 0;
    buf->root_self_ns = 0;
  }
  Bufs().track_stats.clear();
}

std::size_t ProfTraceEventCount() {
  std::lock_guard<std::mutex> lock(Bufs().mu);
  std::size_t n = 0;
  for (const auto& buf : Bufs().bufs) n += buf->events.size();
  return n;
}

std::string ProfChromeTraceJson() {
  std::vector<SiteInfo> sites;
  {
    std::lock_guard<std::mutex> lock(Sites().mu);
    sites = Sites().sites;
  }

  struct FlatEvent {
    int tid;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
    std::uint32_t site;
  };
  std::vector<FlatEvent> events;
  std::map<int, std::string> tracks;
  {
    std::lock_guard<std::mutex> lock(Bufs().mu);
    tracks = Bufs().track_names;
    for (const auto& buf : Bufs().bufs) {
      for (const TraceEvent& e : buf->events) {
        events.push_back(FlatEvent{buf->track, e.start_ns, e.dur_ns, e.site});
      }
      if (!buf->events.empty() && tracks.find(buf->track) == tracks.end()) {
        tracks[buf->track] = buf->track == 0 ? "main" : "thread";
      }
    }
  }
  // Stable order: by track, then start, then longest-first so an enclosing
  // span precedes its children when start times tie.
  std::sort(events.begin(), events.end(),
            [](const FlatEvent& a, const FlatEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return a.site < b.site;
            });
  std::uint64_t epoch = 0;
  if (!events.empty()) {
    epoch = events.front().start_ns;
    for (const FlatEvent& e : events) epoch = std::min(epoch, e.start_ns);
  }

  std::string out;
  out.reserve(128 + events.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [track, name] : tracks) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(track);
    out += ",\"args\":{\"name\":";
    AppendJsonString(out, name.c_str());
    out += "}}";
  }
  if (first) {
    // Even an empty trace names the process so Perfetto shows a track.
    first = false;
    out +=
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"tlsharm\"}}";
  }
  for (const FlatEvent& e : events) {
    const char* name =
        e.site < sites.size() ? sites[e.site].name : "unknown";
    out += ",\n{\"name\":";
    AppendJsonString(out, name);
    out += ",\"cat\":";
    AppendJsonString(out, SpanCategory(name).c_str());
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    AppendMicros(out, e.start_ns - epoch);
    out += ",\"dur\":";
    AppendMicros(out, e.dur_ns);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool ProfWriteChromeTrace(const std::string& path, std::string* error) {
  std::string json = ProfChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
  int closed = std::fclose(f);
  if (wrote != json.size() || closed != 0) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace tlsharm::obs
