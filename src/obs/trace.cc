#include "obs/trace.h"

#include <cstdlib>
#include <ostream>

#include "obs/json.h"

namespace tlsharm::obs {

std::string FormatTraceEvent(const ProbeTraceEvent& event) {
  std::string out;
  out.reserve(160);
  out += "{\"day\":" + std::to_string(event.day);
  out += ",\"seq\":" + std::to_string(event.seq);
  out += ",\"pass\":";
  AppendJsonString(out, event.pass);
  out += ",\"kind\":";
  AppendJsonString(out, event.kind);
  out += ",\"domain\":" + std::to_string(event.domain);
  out += ",\"scheduled\":" + std::to_string(event.scheduled);
  out += ",\"attempt\":" + std::to_string(event.attempt);
  out += ",\"start\":" + std::to_string(event.start);
  out += ",\"dur\":" + std::to_string(event.duration);
  out += ",\"backoff\":" + std::to_string(event.backoff);
  out += ",\"failure\":";
  AppendJsonString(out, event.failure);
  // 0/1 instead of JSON booleans: every trace value stays inside the
  // integer-only subset obs::ParseJson accepts, so tooling can reparse its
  // own output (the scanstats schema gate relies on this).
  out += ",\"final\":";
  out += event.final_attempt ? '1' : '0';
  if (event.resumed >= 0) {
    out += ",\"resumed\":";
    out += event.resumed > 0 ? '1' : '0';
  }
  out.push_back('}');
  return out;
}

void JsonlTraceSink::Emit(const ProbeTraceEvent& event) {
  out_ << FormatTraceEvent(event) << '\n';
  ++emitted_;
}

std::size_t ShardedTraceBuffer::Flush(TraceSink& sink) {
  std::size_t emitted = 0;
  for (auto& shard : shards_) {
    for (const ProbeTraceEvent& event : shard) {
      sink.Emit(event);
      ++emitted;
    }
    shard.clear();
  }
  return emitted;
}

std::string TracePathFromEnv() {
  const char* env = std::getenv("TLSHARM_TRACE");
  return env == nullptr ? std::string() : std::string(env);
}

}  // namespace tlsharm::obs
