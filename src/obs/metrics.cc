#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "obs/json.h"

namespace tlsharm::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(std::int64_t value) { ObserveN(value, 1); }

void Histogram::ObserveN(std::int64_t value, std::uint64_t n) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += n;
  sum_ += value * static_cast<std::int64_t>(n);
  count_ += n;
}

void Histogram::MergeFrom(const Histogram& other) {
  assert(bounds_ == other.bounds_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::MergeFrom(const HistogramSnapshot& other) {
  assert(bounds_ == other.bounds);
  assert(counts_.size() == other.counts.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts[i];
  }
  sum_ += other.sum;
  count_ += other.count;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<std::int64_t> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram(std::move(bounds)))
      .first->second;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    GetCounter(name).Add(counter.Value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    GetGauge(name).Max(gauge.Value());
  }
  for (const auto& [name, histogram] : other.histograms_) {
    GetHistogram(name, histogram.Bounds()).MergeFrom(histogram);
  }
}

void MetricsRegistry::MergeFrom(const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    GetCounter(name).Add(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    GetGauge(name).Max(value);
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    GetHistogram(name, histogram.bounds).MergeFrom(histogram);
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter.Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge.Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(
        name, HistogramSnapshot{histogram.Bounds(), histogram.Counts(),
                                histogram.Sum(), histogram.Count()});
  }
  return snapshot;
}

namespace {

template <typename Map, typename RenderValue>
void AppendJsonMap(std::string& out, const char* section, const Map& map,
                   bool& first_section, RenderValue&& render_value) {
  if (!first_section) out.push_back(',');
  first_section = false;
  AppendJsonString(out, section);
  out += ":{";
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(out, name);
    out.push_back(':');
    render_value(out, value);
  }
  out.push_back('}');
}

template <typename Int>
void AppendIntArray(std::string& out, const std::vector<Int>& values) {
  out.push_back('[');
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(values[i]);
  }
  out.push_back(']');
}

}  // namespace

std::string RenderSnapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  out.push_back('{');
  bool first_section = true;
  AppendJsonMap(out, "counters", snapshot.counters, first_section,
                [](std::string& o, std::uint64_t v) { o += std::to_string(v); });
  AppendJsonMap(out, "gauges", snapshot.gauges, first_section,
                [](std::string& o, std::int64_t v) { o += std::to_string(v); });
  AppendJsonMap(out, "histograms", snapshot.histograms, first_section,
                [](std::string& o, const HistogramSnapshot& h) {
                  o += "{\"bounds\":";
                  AppendIntArray(o, h.bounds);
                  o += ",\"counts\":";
                  AppendIntArray(o, h.counts);
                  o += ",\"sum\":" + std::to_string(h.sum);
                  o += ",\"count\":" + std::to_string(h.count);
                  o.push_back('}');
                });
  out.push_back('}');
  return out;
}

namespace {

bool ReadIntArray(const JsonValue& value, std::vector<std::int64_t>& out) {
  if (value.kind != JsonValue::Kind::kArray) return false;
  for (const JsonValue& entry : value.array) {
    if (entry.kind != JsonValue::Kind::kInt) return false;
    out.push_back(entry.integer);
  }
  return true;
}

bool ReadHistogram(const JsonValue& value, HistogramSnapshot& out) {
  if (value.kind != JsonValue::Kind::kObject || value.object.size() != 4) {
    return false;
  }
  const JsonValue* bounds = value.Find("bounds");
  const JsonValue* counts = value.Find("counts");
  const JsonValue* sum = value.Find("sum");
  const JsonValue* count = value.Find("count");
  if (bounds == nullptr || counts == nullptr || sum == nullptr ||
      count == nullptr || sum->kind != JsonValue::Kind::kInt ||
      count->kind != JsonValue::Kind::kInt) {
    return false;
  }
  if (!ReadIntArray(*bounds, out.bounds)) return false;
  std::vector<std::int64_t> raw_counts;
  if (!ReadIntArray(*counts, raw_counts)) return false;
  if (raw_counts.size() != out.bounds.size() + 1) return false;
  for (const std::int64_t c : raw_counts) {
    if (c < 0) return false;
    out.counts.push_back(static_cast<std::uint64_t>(c));
  }
  out.sum = sum->integer;
  out.count = static_cast<std::uint64_t>(count->integer);
  return true;
}

}  // namespace

bool ParseSnapshot(std::string_view text, MetricsSnapshot& out) {
  JsonValue root;
  if (!ParseJson(text, root) || root.kind != JsonValue::Kind::kObject ||
      root.object.size() != 3) {
    return false;
  }
  const JsonValue* counters = root.Find("counters");
  const JsonValue* gauges = root.Find("gauges");
  const JsonValue* histograms = root.Find("histograms");
  if (counters == nullptr || gauges == nullptr || histograms == nullptr ||
      counters->kind != JsonValue::Kind::kObject ||
      gauges->kind != JsonValue::Kind::kObject ||
      histograms->kind != JsonValue::Kind::kObject) {
    return false;
  }
  for (const auto& [name, value] : counters->object) {
    if (value.kind != JsonValue::Kind::kInt || value.integer < 0) return false;
    out.counters.emplace(name, static_cast<std::uint64_t>(value.integer));
  }
  for (const auto& [name, value] : gauges->object) {
    if (value.kind != JsonValue::Kind::kInt) return false;
    out.gauges.emplace(name, value.integer);
  }
  for (const auto& [name, value] : histograms->object) {
    HistogramSnapshot histogram;
    if (!ReadHistogram(value, histogram)) return false;
    out.histograms.emplace(name, std::move(histogram));
  }
  return true;
}

std::string MetricsPathFromEnv() {
  const char* env = std::getenv("TLSHARM_METRICS");
  return env == nullptr ? std::string() : std::string(env);
}

}  // namespace tlsharm::obs
