#include "obs/fleet.h"

#include <set>
#include <string>

#include "simnet/internet.h"

namespace tlsharm::obs {
namespace {

// STEK issuing-epoch age buckets: an hour up to the paper's 9-week horizon.
std::vector<std::int64_t> StekAgeBounds() {
  return {tlsharm::kHour, 6 * tlsharm::kHour, tlsharm::kDay,
          7 * tlsharm::kDay, 28 * tlsharm::kDay, 63 * tlsharm::kDay};
}

}  // namespace

void CollectFleetMetrics(simnet::Internet& net, SimTime now,
                         MetricsRegistry& registry) {
  registry.GetGauge("fleet.terminators")
      .Max(static_cast<std::int64_t>(net.TerminatorCount()));

  // Shared stores are installed on several terminators; count each once,
  // visiting in terminator-id order so ties resolve deterministically.
  std::set<const void*> seen_steks;
  std::set<const void*> seen_caches;
  std::set<const void*> seen_kex;

  Counter& stek_managers = registry.GetCounter("fleet.stek.managers");
  Counter& stek_rotations = registry.GetCounter("fleet.stek.rotations");
  Counter& stek_epochs = registry.GetCounter("fleet.stek.live_epochs");
  Histogram& stek_age =
      registry.GetHistogram("fleet.stek.issuing_age", StekAgeBounds());
  Counter& session_caches = registry.GetCounter("fleet.session.caches");
  Counter& session_inserts = registry.GetCounter("fleet.session.inserts");
  Counter& session_lookups = registry.GetCounter("fleet.session.lookups");
  Counter& session_hits = registry.GetCounter("fleet.session.hits");
  Counter& kex_caches = registry.GetCounter("fleet.kex.caches");
  Counter& kex_reused = registry.GetCounter("fleet.kex.reused");
  Counter& kex_fresh = registry.GetCounter("fleet.kex.fresh");

  // The sweep reads the resident secret stores directly: they are live in
  // every fleet mode, so an end-of-study pass over a million-domain lazy
  // fleet never materializes (or pays for) a single terminator object.
  for (simnet::TerminatorId id = 0; id < net.TerminatorCount(); ++id) {
    server::StekManager& steks = net.SteksOf(id);
    if (seen_steks.insert(&steks).second) {
      stek_managers.Add();
      stek_rotations.Add(steks.Rotations());
      stek_epochs.Add(steks.LiveEpochs());
      stek_age.Observe(now - steks.IssuingEpochStart(now));
    }

    server::SessionCache& cache = net.CacheOf(id);
    if (seen_caches.insert(&cache).second) {
      session_caches.Add();
      session_inserts.Add(cache.Inserts());
      session_lookups.Add(cache.Lookups());
      session_hits.Add(cache.Hits());
    }

    server::KexCache& kex = net.KexOf(id);
    if (seen_kex.insert(&kex).second) {
      kex_caches.Add();
      kex_reused.Add(kex.ReusedServed());
      kex_fresh.Add(kex.FreshServed());
    }
  }

  if (const simnet::FaultInjector* faults = net.Faults();
      faults != nullptr && faults->Enabled()) {
    for (int kind = 1; kind < simnet::kFaultKinds; ++kind) {
      const auto fault_kind = static_cast<simnet::FaultKind>(kind);
      registry
          .GetCounter("fault.injected." +
                      std::string(simnet::ToString(fault_kind)))
          .Add(faults->InjectedCount(fault_kind));
    }
  }
}

}  // namespace tlsharm::obs
