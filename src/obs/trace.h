// Structured probe-lifecycle telemetry: one event per connection attempt,
// emitted as JSONL through a pluggable TraceSink.
//
// Determinism contract (matching scan_engine.h): events identify a probe by
// its CANONICAL position — (day, seq) where seq is the probe's index in the
// day's merged observation order — never by the worker shard that happened
// to execute it. Shard identity, thread ids, and wall-clock times are
// execution details that would differ across TLSHARM_THREADS values, so
// they are deliberately unrepresentable in an event; every time field is
// virtual. The sharded engine stages events in per-shard buffers (one
// writer per shard, no locks) and flushes them in shard-index order, so the
// JSONL byte stream is identical at any thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/sim_clock.h"

namespace tlsharm::obs {

struct ProbeTraceEvent {
  int day = 0;
  // Canonical index of the probe within its day: main pass probes take
  // 2*target_index (main offer) and 2*target_index + 1 (DHE offer); the
  // requeue pass continues after the main pass in pending order.
  std::uint64_t seq = 0;
  std::string_view pass = "main";  // "main" | "requeue"
  std::string_view kind = "main";  // offered ciphers: "main" | "dhe"
  std::uint32_t domain = 0;
  SimTime scheduled = 0;  // the probe's scheduled virtual time
  int attempt = 1;        // 1-based attempt number within the probe
  SimTime start = 0;      // virtual start of this attempt
  SimTime duration = 0;   // virtual time charged to the attempt
  SimTime backoff = 0;    // wait before the next attempt (0 on the last)
  std::string_view failure = "ok";  // ProbeFailure name for this attempt
  bool final_attempt = true;
  // Resumption outcome: -1 not a resumption probe, 0 rejected, 1 accepted.
  int resumed = -1;
};

// One JSONL line (no trailing newline), fixed key order, virtual times
// only. String fields are JSON-escaped.
std::string FormatTraceEvent(const ProbeTraceEvent& event);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const ProbeTraceEvent& event) = 0;
};

// Writes one JSON object per line to `out`.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(out) {}

  void Emit(const ProbeTraceEvent& event) override;
  std::size_t Emitted() const { return emitted_; }

 private:
  std::ostream& out_;
  std::size_t emitted_ = 0;
};

// Per-shard staging for the parallel scan engine, mirroring
// ShardedObservationBuffer: one writer per shard appends without locking;
// Flush drains the shards in index order so the event stream reaching the
// sink is in canonical global order.
class ShardedTraceBuffer {
 public:
  explicit ShardedTraceBuffer(std::size_t shards) : shards_(shards) {}

  std::size_t ShardCount() const { return shards_.size(); }

  // Single writer per shard; distinct shards may append concurrently.
  void Append(std::size_t shard, const ProbeTraceEvent& event) {
    shards_[shard].push_back(event);
  }

  // Emits every buffered event in shard order and clears the buffers.
  // Returns the number of events emitted.
  std::size_t Flush(TraceSink& sink);

 private:
  std::vector<std::vector<ProbeTraceEvent>> shards_;
};

// The TLSHARM_TRACE environment knob: the path a tool should stream its
// JSONL probe trace to, or "" when tracing is off (the default).
std::string TracePathFromEnv();

}  // namespace tlsharm::obs
