// The wall-clock performance plane: RAII scoped spans over a monotonic
// clock, aggregated into log-bucketed wall-time histograms and exportable
// as a Chrome trace-event JSON.
//
// This is the second of the repo's two observability planes, and it is the
// deliberate opposite of the first (metrics.h / trace.h). The deterministic
// plane makes execution-shape quantities *unrepresentable* so that metrics,
// probe traces, stores and warehouse segments are byte-identical at any
// thread count; this plane measures nothing BUT execution shape — where
// wall-clock time goes, per thread, per span, per fsync — so the
// million-domain scaling work has an attributable baseline. The two planes
// must never mix:
//
//   * Profiling is OFF by default and enabled only by the TLSHARM_PROF
//     environment knob (or SetProfilingEnabled in benches/tests).
//   * No wall-clock value recorded here may ever feed a metric, a probe
//     trace, the store, the warehouse, or the run journal. The plane has no
//     API for reading a single span back on the hot path — data only leaves
//     through ProfSnapshotNow()/ProfWriteChromeTrace(), which tools call
//     after the deterministic artifacts are sealed.
//   * scripts/check.sh proves the isolation: every deterministic artifact
//     is byte-identical with profiling on vs off at 1/2/8 threads.
//
// Concurrency model: every recording write goes to a thread-local buffer
// (one writer, no locks on the span path). Buffers are registered with a
// process-wide list under a mutex on each thread's first span; snapshot and
// trace export walk that list. Reading a worker's buffer is safe once the
// worker has been joined (the join provides the happens-before edge) —
// exactly when the scan engine's merge thread runs, and the only time tools
// snapshot. ProfReset() may only be called while no other instrumented
// thread is running.
//
// Disabled-path cost: ProfScope's constructor is one relaxed atomic load
// and a branch (~1 ns); bench_prof measures it and scripts/check.sh keeps
// the projected whole-scan overhead under budget (warn > 1%, fail > 5%).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tlsharm::obs {

// Span flags.
inline constexpr unsigned kProfNoTrace = 1u;  // aggregate only; no Chrome
                                              // trace event (micro spans too
                                              // hot to record individually)

// A call-site handle: interns `name` into the process-wide site registry
// once, at static initialization. Instrumented .cc files declare these at
// namespace scope so the hot path pays no function-local-static guard.
struct ProfSite {
  explicit ProfSite(const char* name, unsigned flags = 0);
  std::uint32_t id;
  unsigned flags;
};

namespace prof_internal {
extern std::atomic<bool> g_enabled;
// Explicit-timestamp recording layer: ProfScope feeds it the monotonic
// clock; tests feed it fixed values so self-time, buckets and the Chrome
// trace bytes are exactly predictable.
void BeginSpanAt(const ProfSite& site, std::uint64_t now_ns);
void EndSpanAt(std::uint64_t now_ns);
}  // namespace prof_internal

// True when the performance plane is recording. Hot-path cost of the
// disabled check: one relaxed atomic load.
inline bool ProfilingEnabled() {
  return prof_internal::g_enabled.load(std::memory_order_relaxed);
}

// Programmatic switch (benches/tests). Flip only while no instrumented
// thread is running; the TLSHARM_PROF env knob seeds the initial value.
void SetProfilingEnabled(bool enabled);

// Whether completed spans are additionally buffered as Chrome trace events
// (seeded by TLSHARM_PROF_TRACE being non-empty; spans flagged kProfNoTrace
// are never buffered). Histogram aggregation is unaffected.
bool ProfTraceEnabled();
void SetProfTraceEnabled(bool enabled);

// The TLSHARM_PROF_TRACE knob: where a tool should write the Chrome trace
// ("" = off). Load the file in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing.
std::string ProfTracePathFromEnv();

// Monotonic nanoseconds (steady clock).
std::uint64_t ProfNowNs();

// RAII span: records one interval against `site` on the current thread.
class ProfScope {
 public:
  explicit ProfScope(const ProfSite& site) {
    if (ProfilingEnabled()) {
      prof_internal::BeginSpanAt(site, ProfNowNs());
      armed_ = true;
    }
  }
  ~ProfScope() {
    if (armed_) prof_internal::EndSpanAt(ProfNowNs());
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  bool armed_ = false;
};

// Assigns the calling thread to a logical track for the Chrome trace and
// the per-track utilization tables. The scan engine maps track 0 to the
// merge thread and track k+1 to worker shard k, so per-shard tracks are
// stable across days even though the workers are fresh std::threads each
// day. No-op while profiling is disabled.
void ProfSetThreadTrack(int track, const char* name);

// Accumulates one day of shard utilization: `busy_ns` the worker spent
// probing, `stall_ns` it spent waiting at the merge barrier for slower
// shards. Called by the engine's merge thread after each join.
void ProfRecordShardStall(int track, std::uint64_t busy_ns,
                          std::uint64_t stall_ns);

// --- snapshot / export ----------------------------------------------------

// Wall-time histogram buckets: bucket i counts durations in
// [2^i, 2^(i+1)) ns (bucket 0 is [0, 2)), saturating at the last bucket.
inline constexpr int kProfBuckets = 40;

struct ProfSpanStats {
  std::string name;
  unsigned flags = 0;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;  // total minus enclosed child spans
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::array<std::uint64_t, kProfBuckets> buckets{};
};

struct ProfTrackStats {
  int track = 0;
  std::string name;
  std::uint64_t days = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t stall_ns = 0;
};

struct ProfSnapshot {
  std::vector<ProfSpanStats> spans;    // sorted by name
  std::vector<ProfTrackStats> tracks;  // sorted by track id
  std::uint64_t dropped_events = 0;
  // Partition proof for hotspot attribution: the sum of every span's
  // self_ns equals root_total_ns exactly (each thread's depth-0 spans
  // partition into self + child time). root_self_ns is the slice no named
  // child span claims — the unattributed remainder.
  std::uint64_t root_total_ns = 0;
  std::uint64_t root_self_ns = 0;
};

// Merges every thread buffer into one snapshot. Call only when no other
// instrumented thread is running (after the engine joined its workers).
ProfSnapshot ProfSnapshotNow();

// Clears all aggregates, trace events and shard accounting, keeping site
// and track registrations. Same single-threaded calling contract.
void ProfReset();

// Buffered Chrome trace events across all threads (post-join contract).
std::size_t ProfTraceEventCount();

// Renders the buffered events as Chrome trace-event JSON ("traceEvents"
// array of "ph":"X" complete events plus "ph":"M" thread-name metadata;
// ts/dur in microseconds with nanosecond precision, relative to the
// earliest buffered event). Field order is fixed and golden-tested.
std::string ProfChromeTraceJson();

// Writes ProfChromeTraceJson() to `path`. False + `error` on I/O failure.
bool ProfWriteChromeTrace(const std::string& path, std::string* error);

}  // namespace tlsharm::obs
