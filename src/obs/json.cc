#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace tlsharm::obs {

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void AppendJsonString(std::string& out, std::string_view raw) {
  out.push_back('"');
  out += JsonEscape(raw);
  out.push_back('"');
}

namespace {

// Recursive-descent parser over the snapshot subset (see json.h).
class Parser {
 public:
  explicit Parser(std::string_view text) : p_(text.data()), end_(text.data() + text.size()) {}

  bool Parse(JsonValue& out) {
    SkipSpace();
    if (!ParseValue(out, /*depth=*/0)) return false;
    SkipSpace();
    return p_ == end_;  // no trailing garbage
  }

 private:
  static constexpr int kMaxDepth = 32;

  void SkipSpace() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }

  bool ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth || p_ == end_) return false;
    switch (*p_) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': return ParseString(out);
      default: return ParseInt(out);
    }
  }

  bool ParseObject(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++p_;  // '{'
    SkipSpace();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    for (;;) {
      SkipSpace();
      JsonValue key;
      if (p_ == end_ || *p_ != '"' || !ParseString(key)) return false;
      SkipSpace();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(value, depth + 1)) return false;
      if (!out.object.emplace(std::move(key.string), std::move(value)).second) {
        return false;  // duplicate key
      }
      SkipSpace();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++p_;  // '['
    SkipSpace();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    for (;;) {
      SkipSpace();
      JsonValue value;
      if (!ParseValue(value, depth + 1)) return false;
      out.array.push_back(std::move(value));
      SkipSpace();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(JsonValue& out) {
    out.kind = JsonValue::Kind::kString;
    ++p_;  // '"'
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        switch (*p_) {
          case '"': out.string.push_back('"'); break;
          case '\\': out.string.push_back('\\'); break;
          case '/': out.string.push_back('/'); break;
          case 'b': out.string.push_back('\b'); break;
          case 'f': out.string.push_back('\f'); break;
          case 'n': out.string.push_back('\n'); break;
          case 'r': out.string.push_back('\r'); break;
          case 't': out.string.push_back('\t'); break;
          case 'u': {
            if (end_ - p_ < 5) return false;
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = p_[i];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (code > 0x7f) return false;  // snapshot subset: ASCII escapes only
            out.string.push_back(static_cast<char>(code));
            p_ += 4;
            break;
          }
          default: return false;
        }
        ++p_;
      } else {
        out.string.push_back(*p_);
        ++p_;
      }
    }
    if (p_ == end_) return false;
    ++p_;  // closing '"'
    return true;
  }

  bool ParseInt(JsonValue& out) {
    out.kind = JsonValue::Kind::kInt;
    const auto [next, ec] = std::from_chars(p_, end_, out.integer);
    if (ec != std::errc() || next == p_) return false;
    if (next != end_ && (*next == '.' || *next == 'e' || *next == 'E')) {
      return false;  // floats are outside the snapshot subset
    }
    p_ = next;
    return true;
  }

  const char* p_;
  const char* end_;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue& out) {
  Parser parser(text);
  return parser.Parse(out);
}

}  // namespace tlsharm::obs
