#include "obs/prof_report.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <map>
#include <vector>

#include "util/table.h"

namespace tlsharm::obs {
namespace {

int BucketIndex(std::uint64_t ns) {
  int b = std::bit_width(ns | 1) - 1;
  return b < kProfBuckets ? b : kProfBuckets - 1;
}

double Ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }
double Us(double ns) { return ns / 1e3; }

// ---- Chrome trace parsing ------------------------------------------------
//
// The deterministic plane's obs::ParseJson is deliberately an integer-only
// subset (floats are rejected so telemetry snapshots can round-trip
// exactly); Chrome trace ts/dur are fractional microseconds, so the trace
// loader carries its own minimal scanner for the schema ProfChromeTraceJson
// emits. Fractions are re-read with integer math (µs.3dp -> ns), which
// round-trips our own writer losslessly.

struct Cursor {
  std::string_view s;
  std::size_t i = 0;
  std::string* error;

  bool Fail(const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  }
  void SkipWs() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\r' ||
                            s[i] == '\t')) {
      ++i;
    }
  }
  bool Peek(char c) {
    SkipWs();
    return i < s.size() && s[i] == c;
  }
  bool Eat(char c) {
    SkipWs();
    if (i >= s.size() || s[i] != c) return false;
    ++i;
    return true;
  }
};

bool ParseString(Cursor& c, std::string* out) {
  if (!c.Eat('"')) return c.Fail("expected string");
  out->clear();
  while (c.i < c.s.size()) {
    char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.i >= c.s.size()) break;
      char esc = c.s[c.i++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (c.i + 4 > c.s.size()) return c.Fail("truncated \\u escape");
          unsigned v = 0;
          for (int k = 0; k < 4; ++k) {
            char h = c.s[c.i++];
            v <<= 4;
            if (h >= '0' && h <= '9') {
              v |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              v |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              v |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return c.Fail("bad \\u escape");
            }
          }
          out->push_back(static_cast<char>(v & 0xFF));
          break;
        }
        default:
          return c.Fail("bad escape");
      }
    } else {
      out->push_back(ch);
    }
  }
  return c.Fail("unterminated string");
}

// Number -> nanoseconds assuming the field is microseconds with at most
// three decimals (ts/dur); plain integers (pid/tid) read the same way and
// are divided back down by the caller.
bool ParseNumberNs(Cursor& c, std::uint64_t* ns, bool* negative) {
  c.SkipWs();
  *negative = false;
  if (c.i < c.s.size() && c.s[c.i] == '-') {
    *negative = true;
    ++c.i;
  }
  if (c.i >= c.s.size() || !std::isdigit(static_cast<unsigned char>(c.s[c.i])))
    return c.Fail("expected number");
  std::uint64_t whole = 0;
  while (c.i < c.s.size() &&
         std::isdigit(static_cast<unsigned char>(c.s[c.i]))) {
    whole = whole * 10 + static_cast<std::uint64_t>(c.s[c.i] - '0');
    ++c.i;
  }
  std::uint64_t frac = 0;
  int frac_digits = 0;
  if (c.i < c.s.size() && c.s[c.i] == '.') {
    ++c.i;
    while (c.i < c.s.size() &&
           std::isdigit(static_cast<unsigned char>(c.s[c.i]))) {
      if (frac_digits < 3) {
        frac = frac * 10 + static_cast<std::uint64_t>(c.s[c.i] - '0');
        ++frac_digits;
      }
      ++c.i;
    }
  }
  while (frac_digits < 3) {
    frac *= 10;
    ++frac_digits;
  }
  *ns = whole * 1000 + frac;
  return true;
}

bool SkipValue(Cursor& c);

bool SkipObject(Cursor& c) {
  if (!c.Eat('{')) return c.Fail("expected object");
  if (c.Eat('}')) return true;
  for (;;) {
    std::string key;
    if (!ParseString(c, &key)) return false;
    if (!c.Eat(':')) return c.Fail("expected ':'");
    if (!SkipValue(c)) return false;
    if (c.Eat(',')) continue;
    if (c.Eat('}')) return true;
    return c.Fail("expected ',' or '}'");
  }
}

bool SkipArray(Cursor& c) {
  if (!c.Eat('[')) return c.Fail("expected array");
  if (c.Eat(']')) return true;
  for (;;) {
    if (!SkipValue(c)) return false;
    if (c.Eat(',')) continue;
    if (c.Eat(']')) return true;
    return c.Fail("expected ',' or ']'");
  }
}

bool SkipValue(Cursor& c) {
  c.SkipWs();
  if (c.i >= c.s.size()) return c.Fail("unexpected end");
  char ch = c.s[c.i];
  if (ch == '"') {
    std::string tmp;
    return ParseString(c, &tmp);
  }
  if (ch == '{') return SkipObject(c);
  if (ch == '[') return SkipArray(c);
  if (ch == '-' || std::isdigit(static_cast<unsigned char>(ch))) {
    std::uint64_t tmp;
    bool neg;
    return ParseNumberNs(c, &tmp, &neg);
  }
  // true/false/null
  static const char* kWords[] = {"true", "false", "null"};
  for (const char* w : kWords) {
    std::size_t n = std::char_traits<char>::length(w);
    if (c.s.substr(c.i, n) == w) {
      c.i += n;
      return true;
    }
  }
  return c.Fail("unexpected token");
}

struct RawEvent {
  std::string name;
  std::string ph;
  int tid = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::string args_name;
  bool has_dur = false;
};

bool ParseEventObject(Cursor& c, RawEvent* ev) {
  if (!c.Eat('{')) return c.Fail("expected event object");
  if (c.Eat('}')) return true;
  for (;;) {
    std::string key;
    if (!ParseString(c, &key)) return false;
    if (!c.Eat(':')) return c.Fail("expected ':'");
    if (key == "name" || key == "ph" || key == "cat") {
      std::string v;
      if (!ParseString(c, &v)) return false;
      if (key == "name") {
        ev->name = v;
      } else if (key == "ph") {
        ev->ph = v;
      }
    } else if (key == "tid" || key == "pid") {
      std::uint64_t v;
      bool neg;
      if (!ParseNumberNs(c, &v, &neg)) return false;
      if (key == "tid") {
        int tid = static_cast<int>(v / 1000);
        ev->tid = neg ? -tid : tid;
      }
    } else if (key == "ts" || key == "dur") {
      std::uint64_t v;
      bool neg;
      if (!ParseNumberNs(c, &v, &neg)) return false;
      if (neg) return c.Fail("negative " + key);
      if (key == "ts") {
        ev->ts_ns = v;
      } else {
        ev->dur_ns = v;
        ev->has_dur = true;
      }
    } else if (key == "args") {
      // Look one level deep for {"name": "..."} (thread_name metadata).
      if (!c.Eat('{')) return c.Fail("expected args object");
      if (!c.Eat('}')) {
        for (;;) {
          std::string akey;
          if (!ParseString(c, &akey)) return false;
          if (!c.Eat(':')) return c.Fail("expected ':'");
          if (akey == "name" && c.Peek('"')) {
            if (!ParseString(c, &ev->args_name)) return false;
          } else {
            if (!SkipValue(c)) return false;
          }
          if (c.Eat(',')) continue;
          if (c.Eat('}')) break;
          return c.Fail("expected ',' or '}' in args");
        }
      }
    } else {
      if (!SkipValue(c)) return false;
    }
    if (c.Eat(',')) continue;
    if (c.Eat('}')) return true;
    return c.Fail("expected ',' or '}' in event");
  }
}

}  // namespace

double ProfQuantileNs(const ProfSpanStats& s, double q) {
  if (s.count == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(s.min_ns);
  if (q >= 1.0) return static_cast<double>(s.max_ns);
  double rank = q * static_cast<double>(s.count - 1);
  std::uint64_t cum = 0;
  for (int i = 0; i < kProfBuckets; ++i) {
    std::uint64_t c = s.buckets[i];
    if (c == 0) continue;
    if (rank < static_cast<double>(cum + c)) {
      double lo = i == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << i);
      double hi = static_cast<double>(std::uint64_t{1} << (i + 1));
      double frac = (rank - static_cast<double>(cum)) / static_cast<double>(c);
      double v = lo + frac * (hi - lo);
      v = std::max(v, static_cast<double>(s.min_ns));
      v = std::min(v, static_cast<double>(s.max_ns));
      return v;
    }
    cum += c;
  }
  return static_cast<double>(s.max_ns);
}

double ProfAttributedPct(const ProfSnapshot& snap) {
  if (snap.root_total_ns == 0) return 100.0;
  return 100.0 * (1.0 - static_cast<double>(snap.root_self_ns) /
                            static_cast<double>(snap.root_total_ns));
}

std::string RenderProfReport(const ProfSnapshot& snap) {
  std::string out;
  out += "wall-clock performance plane (TLSHARM_PROF)\n\n";

  std::vector<const ProfSpanStats*> by_self;
  by_self.reserve(snap.spans.size());
  for (const auto& s : snap.spans) by_self.push_back(&s);
  std::sort(by_self.begin(), by_self.end(),
            [](const ProfSpanStats* a, const ProfSpanStats* b) {
              if (a->self_ns != b->self_ns) return a->self_ns > b->self_ns;
              return a->name < b->name;
            });

  double root_total = static_cast<double>(snap.root_total_ns);
  TextTable spans({"span", "count", "total ms", "self ms", "self %",
                   "p50 us", "p95 us", "p99 us"});
  for (const ProfSpanStats* s : by_self) {
    double self_pct =
        root_total > 0.0
            ? 100.0 * static_cast<double>(s->self_ns) / root_total
            : 0.0;
    spans.AddRow({s->name, FormatCount(s->count),
                  FormatDouble(Ms(s->total_ns), 3),
                  FormatDouble(Ms(s->self_ns), 3), FormatDouble(self_pct, 1),
                  FormatDouble(Us(ProfQuantileNs(*s, 0.50)), 1),
                  FormatDouble(Us(ProfQuantileNs(*s, 0.95)), 1),
                  FormatDouble(Us(ProfQuantileNs(*s, 0.99)), 1)});
  }
  out += spans.Render();

  if (!snap.tracks.empty()) {
    out += "\nshard utilization (merge-barrier stalls)\n";
    TextTable tracks(
        {"track", "name", "days", "busy ms", "stall ms", "util %"});
    for (const auto& t : snap.tracks) {
      double denom = static_cast<double>(t.busy_ns + t.stall_ns);
      double util = denom > 0.0
                        ? 100.0 * static_cast<double>(t.busy_ns) / denom
                        : 0.0;
      tracks.AddRow({std::to_string(t.track), t.name,
                     FormatCount(t.days), FormatDouble(Ms(t.busy_ns), 3),
                     FormatDouble(Ms(t.stall_ns), 3),
                     FormatDouble(util, 1)});
    }
    out += tracks.Render();
  }

  out += "\nroot wall time " + FormatDouble(Ms(snap.root_total_ns), 3) +
         " ms, attributed to named spans: " +
         FormatDouble(ProfAttributedPct(snap), 1) + "%\n";
  if (snap.dropped_events > 0) {
    out += "WARNING: " + FormatCount(snap.dropped_events) +
           " trace events dropped (per-thread buffer cap)\n";
  }
  return out;
}

std::string RenderHotspotJson(const ProfSnapshot& snap, int max_rows) {
  std::vector<const ProfSpanStats*> by_self;
  by_self.reserve(snap.spans.size());
  for (const auto& s : snap.spans) by_self.push_back(&s);
  std::sort(by_self.begin(), by_self.end(),
            [](const ProfSpanStats* a, const ProfSpanStats* b) {
              if (a->self_ns != b->self_ns) return a->self_ns > b->self_ns;
              return a->name < b->name;
            });
  if (max_rows >= 0 && by_self.size() > static_cast<std::size_t>(max_rows))
    by_self.resize(static_cast<std::size_t>(max_rows));

  std::string out = "[";
  bool first = true;
  for (const ProfSpanStats* s : by_self) {
    if (!first) out += ", ";
    first = false;
    out += "{\"span\": \"" + s->name + "\"";
    out += ", \"count\": " + std::to_string(s->count);
    out += ", \"total_ns\": " + std::to_string(s->total_ns);
    out += ", \"self_ns\": " + std::to_string(s->self_ns);
    out += ", \"p50_ns\": " +
           std::to_string(
               static_cast<std::uint64_t>(ProfQuantileNs(*s, 0.50)));
    out += ", \"p95_ns\": " +
           std::to_string(
               static_cast<std::uint64_t>(ProfQuantileNs(*s, 0.95)));
    out += ", \"p99_ns\": " +
           std::to_string(
               static_cast<std::uint64_t>(ProfQuantileNs(*s, 0.99)));
    out += "}";
  }
  out += "]";
  return out;
}

bool LoadChromeTrace(std::string_view json, ProfSnapshot* out,
                     std::string* error) {
  *out = ProfSnapshot{};
  Cursor c{json, 0, error};
  if (!c.Eat('{')) return c.Fail("expected top-level object");

  std::vector<RawEvent> events;
  std::map<int, std::string> track_names;

  bool saw_events = false;
  if (!c.Eat('}')) {
    for (;;) {
      std::string key;
      if (!ParseString(c, &key)) return false;
      if (!c.Eat(':')) return c.Fail("expected ':'");
      if (key == "traceEvents") {
        saw_events = true;
        if (!c.Eat('[')) return c.Fail("expected traceEvents array");
        if (!c.Eat(']')) {
          for (;;) {
            RawEvent ev;
            if (!ParseEventObject(c, &ev)) return false;
            if (ev.ph == "M") {
              if (ev.name == "thread_name" && !ev.args_name.empty()) {
                track_names[ev.tid] = ev.args_name;
              }
            } else if (ev.ph == "X" && ev.has_dur) {
              events.push_back(std::move(ev));
            }
            if (c.Eat(',')) continue;
            if (c.Eat(']')) break;
            return c.Fail("expected ',' or ']' in traceEvents");
          }
        }
      } else {
        if (!SkipValue(c)) return false;
      }
      if (c.Eat(',')) continue;
      if (c.Eat('}')) break;
      return c.Fail("expected ',' or '}' at top level");
    }
  }
  if (!saw_events) return c.Fail("no traceEvents array");

  // Re-nest each tid's complete events by interval containment to recover
  // self-time (parent self = dur minus directly-enclosed children).
  std::sort(events.begin(), events.end(),
            [](const RawEvent& a, const RawEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.dur_ns > b.dur_ns;
            });

  struct Agg {
    std::uint64_t count = 0, total = 0, self = 0, min = 0, max = 0;
    std::array<std::uint64_t, kProfBuckets> buckets{};
  };
  std::map<std::string, Agg> aggs;
  std::map<int, std::uint64_t> root_per_tid;

  struct Open {
    const RawEvent* ev;
    std::uint64_t end_ns;
    std::uint64_t child_ns = 0;
  };
  std::vector<Open> stack;
  int cur_tid = 0;

  auto finalize = [&](const Open& o) {
    std::uint64_t dur = o.ev->dur_ns;
    std::uint64_t self = dur >= o.child_ns ? dur - o.child_ns : 0;
    Agg& a = aggs[o.ev->name];
    if (a.count == 0 || dur < a.min) a.min = dur;
    if (dur > a.max) a.max = dur;
    a.count += 1;
    a.total += dur;
    a.self += self;
    a.buckets[BucketIndex(dur)] += 1;
  };

  auto drain = [&](std::uint64_t upto_ns, bool all) {
    while (!stack.empty() &&
           (all || stack.back().end_ns <= upto_ns)) {
      Open o = stack.back();
      stack.pop_back();
      finalize(o);
      if (stack.empty()) {
        out->root_total_ns += o.ev->dur_ns;
        std::uint64_t self =
            o.ev->dur_ns >= o.child_ns ? o.ev->dur_ns - o.child_ns : 0;
        out->root_self_ns += self;
        root_per_tid[cur_tid] += o.ev->dur_ns;
      } else {
        stack.back().child_ns += o.ev->dur_ns;
      }
    }
  };

  for (const RawEvent& ev : events) {
    if (!stack.empty() && ev.tid != cur_tid) drain(0, true);
    cur_tid = ev.tid;
    drain(ev.ts_ns, false);
    stack.push_back(Open{&ev, ev.ts_ns + ev.dur_ns, 0});
  }
  drain(0, true);

  for (auto& [name, a] : aggs) {
    ProfSpanStats s;
    s.name = name;
    s.count = a.count;
    s.total_ns = a.total;
    s.self_ns = a.self;
    s.min_ns = a.min;
    s.max_ns = a.max;
    s.buckets = a.buckets;
    out->spans.push_back(std::move(s));
  }
  for (const auto& [tid, root_ns] : root_per_tid) {
    ProfTrackStats t;
    t.track = tid;
    auto it = track_names.find(tid);
    t.name = it != track_names.end() ? it->second : "thread";
    t.busy_ns = root_ns;
    out->tracks.push_back(std::move(t));
  }
  return true;
}

}  // namespace tlsharm::obs
