// Server-fleet and fault-injector metrics collection.
//
// Runs on a single thread AFTER a scan's workers have joined, walking the
// terminator fleet in id order and de-duplicating shared secret stores
// (session caches, STEK managers, KEX caches shared across terminators are
// counted once). Everything collected here is a deterministic function of
// the scan workload: cumulative operation counters (inserts, lookups, key
// reuses, injected faults) depend only on the multiset of handshakes —
// which the engine's purity contract fixes — and STEK epoch state is
// time-indexed. Quantities that DO depend on thread interleaving (live
// session-cache occupancy under the lazy restart flush) are deliberately
// not collected; see DESIGN.md "Observability".
#pragma once

#include "obs/metrics.h"
#include "util/sim_clock.h"

namespace tlsharm::simnet {
class Internet;
}

namespace tlsharm::obs {

// Records fleet gauges/counters into `registry` as of virtual time `now`
// (typically the end of the study). Advances STEK managers' time-indexed
// state to `now` — safe to interleave with later time-indexed queries, but
// call it only after concurrent scanning has finished.
void CollectFleetMetrics(simnet::Internet& net, SimTime now,
                         MetricsRegistry& registry);

}  // namespace tlsharm::obs
