// Minimal JSON support for the observability layer: string escaping for the
// JSONL trace and a parser for the (small, canonical) subset of JSON the
// metrics snapshot uses — objects, arrays, strings, and integers.
//
// This is deliberately not a general JSON library: the snapshot format is
// produced by RenderSnapshot (metrics.h) with sorted keys and no floats, so
// a recursive-descent parser over that subset round-trips it exactly. That
// exactness is what lets scanstats verify schema drift byte-for-byte.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tlsharm::obs {

// Escapes `raw` for inclusion inside a JSON string literal: backslash,
// double quote, and control characters (\n, \t, ... and \u00XX for the
// rest). Returns the escaped body WITHOUT surrounding quotes.
std::string JsonEscape(std::string_view raw);

// Appends "\"escaped\"" to `out`.
void AppendJsonString(std::string& out, std::string_view raw);

// A parsed JSON value from the snapshot subset. Numbers are restricted to
// 64-bit signed integers — every value the metrics layer emits (counts,
// virtual times) is integral, which keeps parsing and re-rendering exact.
struct JsonValue {
  enum class Kind : std::uint8_t { kInt, kString, kArray, kObject };
  Kind kind = Kind::kInt;

  std::int64_t integer = 0;
  std::string string;
  std::vector<JsonValue> array;
  // std::map: iteration in key order, matching the canonical rendering.
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

// Parses the snapshot JSON subset. Returns false (and leaves `out`
// unspecified) on any syntax error, float, bool, null, or duplicate key.
bool ParseJson(std::string_view text, JsonValue& out);

}  // namespace tlsharm::obs
