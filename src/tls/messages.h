// Handshake message structures and their wire codecs.
//
// A "flight" is a concatenation of handshake messages, each framed as
// type(1) || length(3) || body, matching RFC 5246's handshake framing. The
// in-memory transport carries flights as byte strings so both serialization
// directions are exercised on every connection, and so passive captures
// (the attack module) can parse exactly what went over the wire.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pki/certificate.h"
#include "tls/constants.h"
#include "util/bytes.h"

namespace tlsharm::tls {

struct ClientHello {
  std::uint16_t version = kVersionTls12;
  Bytes random;            // 32 bytes
  Bytes session_id;        // 0..32 bytes; non-empty offers ID resumption
  std::vector<std::uint16_t> cipher_suites;
  std::string server_name;              // SNI; empty = extension absent
  bool offer_session_ticket = false;    // include the session-ticket ext
  Bytes session_ticket;                 // non-empty = offer resumption

  Bytes Serialize() const;
  static std::optional<ClientHello> Parse(ByteView body);
};

struct ServerHello {
  std::uint16_t version = kVersionTls12;
  Bytes random;       // 32 bytes
  Bytes session_id;   // echo of client's = resumption accepted
  std::uint16_t cipher_suite = 0;
  bool session_ticket_ack = false;  // server will send NewSessionTicket

  Bytes Serialize() const;
  static std::optional<ServerHello> Parse(ByteView body);
};

struct CertificateMsg {
  pki::CertificateChain chain;

  Bytes Serialize() const;
  static std::optional<CertificateMsg> Parse(ByteView body);
};

struct ServerKeyExchange {
  std::uint16_t group = 0;  // NamedGroup
  Bytes public_value;
  Bytes signature;  // over client_random || server_random || params

  // The signed-parameters blob (group || public value), used on both sides.
  Bytes SignedParams() const;

  Bytes Serialize() const;
  static std::optional<ServerKeyExchange> Parse(ByteView body);
};

struct ServerHelloDone {
  Bytes Serialize() const { return {}; }
};

struct ClientKeyExchange {
  Bytes public_value;

  Bytes Serialize() const;
  static std::optional<ClientKeyExchange> Parse(ByteView body);
};

struct NewSessionTicket {
  std::uint32_t lifetime_hint_seconds = 0;
  Bytes ticket;

  Bytes Serialize() const;
  static std::optional<NewSessionTicket> Parse(ByteView body);
};

struct Finished {
  Bytes verify_data;  // 12 bytes

  Bytes Serialize() const { return verify_data; }
  static std::optional<Finished> Parse(ByteView body);
};

// Framed handshake message.
struct HandshakeMessage {
  HandshakeType type;
  Bytes body;
};

// Appends `type || len24 || body` to `flight`.
void AppendHandshake(Bytes& flight, HandshakeType type, ByteView body);

// Splits a flight into framed messages; nullopt on malformed framing.
std::optional<std::vector<HandshakeMessage>> ParseFlight(ByteView flight);

}  // namespace tlsharm::tls
