#include "tls/ticket.h"

#include <cstdlib>

#include "crypto/aes128.h"
#include "crypto/hmac.h"
#include "crypto/tuning.h"
#include "tls/wire.h"

namespace tlsharm::tls {
namespace {

constexpr std::size_t kIvSize = 16;
constexpr std::size_t kMacSize = 32;

// SChannel-like wrapper magic (stands in for the ASN.1 header of the DPAPI
// object the paper parsed).
constexpr std::uint8_t kSChannelMagic[4] = {0x30, 0x82, 0x53, 0x43};
constexpr std::size_t kGuidSize = 16;

// Seal/Open crypto, routed through the STEK's cached schedules when present.
// Reference mode (and hand-built Steks without caches) re-expands the key
// material per call; both paths produce identical bytes.

Bytes MacOver(const Stek& stek, ByteView header_and_ct) {
  if (stek.mac && !crypto::ReferenceCryptoEnabled()) {
    crypto::HmacSha256 hmac = *stek.mac;  // clone of the keyed midstates
    hmac.Update(header_and_ct);
    const crypto::Sha256Digest d = hmac.Finish();
    return Bytes(d.begin(), d.end());
  }
  return crypto::HmacSha256Bytes(stek.mac_key, header_and_ct);
}

Bytes CbcEncrypt(const Stek& stek, const crypto::AesBlock& iv, ByteView pt) {
  if (stek.aes && !crypto::ReferenceCryptoEnabled()) {
    return crypto::Aes128CbcEncrypt(*stek.aes, iv, pt);
  }
  return crypto::Aes128CbcEncrypt(crypto::ToAesKey(stek.aes_key), iv, pt);
}

std::optional<Bytes> CbcDecrypt(const Stek& stek, const crypto::AesBlock& iv,
                                ByteView ct) {
  if (stek.aes && !crypto::ReferenceCryptoEnabled()) {
    return crypto::Aes128CbcDecrypt(*stek.aes, iv, ct);
  }
  return crypto::Aes128CbcDecrypt(crypto::ToAesKey(stek.aes_key), iv, ct);
}

// ---------------------------------------------------------------------------
// RFC 5077 recommended layout, parameterized by key-name width so the
// mbedTLS variant can share the construction.

Bytes SealRfc(const Stek& stek, const TicketState& state, crypto::Drbg& drbg,
              std::size_t key_name_size, bool mbedtls_len_field) {
  Bytes out = stek.key_name;
  out.resize(key_name_size);  // defensive: exact width on the wire
  const Bytes iv = drbg.Generate(kIvSize);
  Append(out, iv);
  const Bytes ct =
      CbcEncrypt(stek, crypto::ToAesBlock(iv), state.Serialize());
  if (mbedtls_len_field) AppendUint(out, ct.size(), 2);
  Append(out, ct);
  Append(out, MacOver(stek, out));
  return out;
}

std::optional<TicketState> OpenRfc(const Stek& stek, ByteView ticket,
                                   std::size_t key_name_size,
                                   bool mbedtls_len_field) {
  const std::size_t header = key_name_size + kIvSize +
                             (mbedtls_len_field ? 2 : 0);
  if (ticket.size() < header + kMacSize + crypto::kAesBlockSize) {
    return std::nullopt;
  }
  if (!ConstantTimeEqual(ByteView(ticket.data(), key_name_size),
                         ByteView(stek.key_name.data(), key_name_size))) {
    return std::nullopt;
  }
  const std::size_t body_len = ticket.size() - kMacSize;
  if (!ConstantTimeEqual(ByteView(ticket.data() + body_len, kMacSize),
                         MacOver(stek, ByteView(ticket.data(), body_len)))) {
    return std::nullopt;
  }
  const ByteView iv(ticket.data() + key_name_size, kIvSize);
  const ByteView ct(ticket.data() + header, body_len - header);
  if (mbedtls_len_field) {
    const std::uint64_t declared =
        ReadUint(ticket, key_name_size + kIvSize, 2);
    if (declared != ct.size()) return std::nullopt;
  }
  const auto pt = CbcDecrypt(stek, crypto::ToAesBlock(iv), ct);
  if (!pt) return std::nullopt;
  return TicketState::Parse(*pt);
}

class Rfc5077CodecImpl final : public TicketCodec {
 public:
  std::string_view Name() const override { return "rfc5077"; }
  std::size_t KeyNameSize() const override { return 16; }
  Bytes Seal(const Stek& stek, const TicketState& state,
             crypto::Drbg& drbg) const override {
    return SealRfc(stek, state, drbg, 16, false);
  }
  std::optional<TicketState> Open(const Stek& stek,
                                  ByteView ticket) const override {
    return OpenRfc(stek, ticket, 16, false);
  }
  std::optional<Bytes> ExtractStekId(ByteView ticket) const override {
    if (ticket.size() < 16) return std::nullopt;
    return Bytes(ticket.begin(), ticket.begin() + 16);
  }
};

class MbedTlsCodecImpl final : public TicketCodec {
 public:
  std::string_view Name() const override { return "mbedtls"; }
  std::size_t KeyNameSize() const override { return 4; }
  Bytes Seal(const Stek& stek, const TicketState& state,
             crypto::Drbg& drbg) const override {
    return SealRfc(stek, state, drbg, 4, true);
  }
  std::optional<TicketState> Open(const Stek& stek,
                                  ByteView ticket) const override {
    return OpenRfc(stek, ticket, 4, true);
  }
  std::optional<Bytes> ExtractStekId(ByteView ticket) const override {
    if (ticket.size() < 4) return std::nullopt;
    return Bytes(ticket.begin(), ticket.begin() + 4);
  }
};

// SChannel: magic(4) || total_len(2) || version(2)=1 || guid(16) ||
// iv(16) || ct || mac(32). The GUID plays the Master Key GUID role.
class SChannelCodecImpl final : public TicketCodec {
 public:
  std::string_view Name() const override { return "schannel"; }
  std::size_t KeyNameSize() const override { return kGuidSize; }

  Bytes Seal(const Stek& stek, const TicketState& state,
             crypto::Drbg& drbg) const override {
    Bytes out(kSChannelMagic, kSChannelMagic + 4);
    AppendUint(out, 0, 2);  // length placeholder, patched below
    AppendUint(out, 1, 2);  // version
    Bytes guid = stek.key_name;
    guid.resize(kGuidSize);
    Append(out, guid);
    const Bytes iv = drbg.Generate(kIvSize);
    Append(out, iv);
    const Bytes ct =
        CbcEncrypt(stek, crypto::ToAesBlock(iv), state.Serialize());
    Append(out, ct);
    // Patch the total length (including the MAC yet to be appended) before
    // MACing so the MAC covers the final wire bytes.
    const std::size_t total = out.size() + kMacSize;
    out[4] = static_cast<std::uint8_t>(total >> 8);
    out[5] = static_cast<std::uint8_t>(total);
    Append(out, MacOver(stek, out));
    return out;
  }

  std::optional<TicketState> Open(const Stek& stek,
                                  ByteView ticket) const override {
    const auto guid = ExtractStekId(ticket);
    if (!guid) return std::nullopt;
    Bytes expected = stek.key_name;
    expected.resize(kGuidSize);
    if (!ConstantTimeEqual(*guid, expected)) return std::nullopt;
    const std::size_t header = 4 + 2 + 2 + kGuidSize + kIvSize;
    const std::size_t body_len = ticket.size() - kMacSize;
    // MAC covers everything before it, including the patched length field.
    if (!ConstantTimeEqual(ByteView(ticket.data() + body_len, kMacSize),
                           MacOver(stek, ByteView(ticket.data(), body_len)))) {
      return std::nullopt;
    }
    const ByteView iv(ticket.data() + 4 + 2 + 2 + kGuidSize, kIvSize);
    const ByteView ct(ticket.data() + header, body_len - header);
    const auto pt = CbcDecrypt(stek, crypto::ToAesBlock(iv), ct);
    if (!pt) return std::nullopt;
    return TicketState::Parse(*pt);
  }

  std::optional<Bytes> ExtractStekId(ByteView ticket) const override {
    const std::size_t min_size =
        4 + 2 + 2 + kGuidSize + kIvSize + crypto::kAesBlockSize + kMacSize;
    if (ticket.size() < min_size) return std::nullopt;
    for (int i = 0; i < 4; ++i) {
      if (ticket[static_cast<std::size_t>(i)] != kSChannelMagic[i]) {
        return std::nullopt;
      }
    }
    if (ReadUint(ticket, 4, 2) != ticket.size()) return std::nullopt;
    if (ReadUint(ticket, 6, 2) != 1) return std::nullopt;
    return Bytes(ticket.begin() + 8, ticket.begin() + 8 + kGuidSize);
  }
};

}  // namespace

Stek Stek::Generate(crypto::Drbg& drbg, std::size_t key_name_size) {
  Stek stek;
  stek.key_name = drbg.Generate(key_name_size);
  stek.aes_key = drbg.Generate(crypto::kAes128KeySize);
  stek.mac_key = drbg.Generate(32);
  stek.PrecomputeSchedules();
  return stek;
}

void Stek::PrecomputeSchedules() {
  aes = std::make_shared<const crypto::Aes128>(crypto::ToAesKey(aes_key));
  mac = std::make_shared<const crypto::HmacSha256>(mac_key);
}

Bytes TicketState::Serialize() const {
  Writer w;
  w.WriteUint(cipher_suite, 2);
  w.WriteVector(master_secret, 1);
  w.WriteUint(static_cast<std::uint64_t>(issue_time), 8);
  return std::move(w).Result();
}

std::optional<TicketState> TicketState::Parse(ByteView data) {
  Reader r(data);
  TicketState state;
  state.cipher_suite = static_cast<std::uint16_t>(r.ReadUint(2));
  state.master_secret = r.ReadVector(1);
  state.issue_time = static_cast<SimTime>(r.ReadUint(8));
  if (r.Failed() || !r.AtEnd()) return std::nullopt;
  if (state.master_secret.size() != kMasterSecretSize) return std::nullopt;
  return state;
}

const TicketCodec& Rfc5077Codec() {
  static const Rfc5077CodecImpl codec;
  return codec;
}

const TicketCodec& MbedTlsCodec() {
  static const MbedTlsCodecImpl codec;
  return codec;
}

const TicketCodec& SChannelCodec() {
  static const SChannelCodecImpl codec;
  return codec;
}

const TicketCodec& GetTicketCodec(TicketCodecKind kind) {
  switch (kind) {
    case TicketCodecKind::kRfc5077:
      return Rfc5077Codec();
    case TicketCodecKind::kMbedTls:
      return MbedTlsCodec();
    case TicketCodecKind::kSChannel:
      return SChannelCodec();
  }
  std::abort();
}

std::optional<Bytes> ExtractStekIdAuto(ByteView ticket) {
  // Strongly structured layouts first.
  if (auto guid = SChannelCodec().ExtractStekId(ticket); guid) return guid;
  // mbedTLS layout has a self-consistent length field at offset 20.
  const std::size_t mbed_overhead = 4 + 16 + 2 + 32;
  if (ticket.size() >= mbed_overhead + crypto::kAesBlockSize) {
    const std::uint64_t declared = ReadUint(ticket, 4 + 16, 2);
    const std::size_t ct_len = ticket.size() - mbed_overhead;
    if (declared == ct_len && ct_len % crypto::kAesBlockSize == 0) {
      return MbedTlsCodec().ExtractStekId(ticket);
    }
  }
  return Rfc5077Codec().ExtractStekId(ticket);
}

}  // namespace tlsharm::tls
