#include "tls/client.h"

#include "crypto/kex.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"

namespace tlsharm::tls {
namespace {

HandshakeResult Fail(
    std::string error,
    HandshakeErrorClass error_class = HandshakeErrorClass::kMalformed) {
  HandshakeResult r;
  r.error = std::move(error);
  r.error_class = error_class;
  return r;
}

// A failed ServerConnection is a reset/timeout only when it reports the
// canonical transport details; everything else is a deliberate abort.
HandshakeErrorClass ClassifyTransport(std::string_view detail) {
  if (detail == kResetErrorDetail) return HandshakeErrorClass::kReset;
  if (detail == kTimeoutErrorDetail) return HandshakeErrorClass::kTimeout;
  return HandshakeErrorClass::kAlert;
}

// Transcript hash over framed handshake messages.
class Transcript {
 public:
  void Add(HandshakeType type, ByteView body) {
    Bytes framed;
    AppendHandshake(framed, type, body);
    hash_.Update(framed);
  }
  Bytes CurrentHash() const {
    crypto::Sha256 copy = hash_;  // snapshot
    const crypto::Sha256Digest d = copy.Finish();
    return Bytes(d.begin(), d.end());
  }

 private:
  crypto::Sha256 hash_;
};

}  // namespace

HandshakeResult TlsClient::Handshake(ServerConnection& conn, SimTime now,
                                     crypto::Drbg& drbg) {
  HandshakeResult result;
  Transcript transcript;

  // --- ClientHello -------------------------------------------------------
  ClientHello ch;
  ch.random = drbg.Generate(kRandomSize);
  ch.session_id = config_->resume_session_id;
  for (CipherSuite s : config_->offered_suites) {
    ch.cipher_suites.push_back(static_cast<std::uint16_t>(s));
  }
  ch.server_name = config_->server_name;
  ch.offer_session_ticket = config_->offer_session_ticket;
  ch.session_ticket = config_->resume_ticket;
  result.client_random = ch.random;

  const Bytes ch_body = ch.Serialize();
  transcript.Add(HandshakeType::kClientHello, ch_body);
  Bytes flight1;
  AppendHandshake(flight1, HandshakeType::kClientHello, ch_body);

  const Bytes response = conn.OnClientFlight(flight1);
  if (conn.Failed()) {
    return Fail("server aborted: " + std::string(conn.ErrorDetail()),
                ClassifyTransport(conn.ErrorDetail()));
  }
  if (response.empty()) return Fail("empty server flight");
  const auto msgs = ParseFlight(response);
  if (!msgs || msgs->empty()) return Fail("malformed server flight");

  // --- ServerHello -------------------------------------------------------
  std::size_t idx = 0;
  if ((*msgs)[idx].type != HandshakeType::kServerHello) {
    return Fail("expected ServerHello");
  }
  const auto sh = ServerHello::Parse((*msgs)[idx].body);
  if (!sh) return Fail("bad ServerHello");
  if (sh->version != kVersionTls12) return Fail("version mismatch");
  bool offered = false;
  for (CipherSuite s : config_->offered_suites) {
    offered |= static_cast<std::uint16_t>(s) == sh->cipher_suite;
  }
  if (!offered || !IsKnownCipherSuite(sh->cipher_suite)) {
    return Fail("server chose unoffered suite");
  }
  transcript.Add(HandshakeType::kServerHello, (*msgs)[idx].body);
  ++idx;
  result.suite = static_cast<CipherSuite>(sh->cipher_suite);
  result.server_random = sh->random;
  result.session_id = sh->session_id;

  // Abbreviated handshakes never carry a Certificate.
  const bool full_handshake =
      idx < msgs->size() && (*msgs)[idx].type == HandshakeType::kCertificate;

  if (!full_handshake) {
    // --- Abbreviated (resumption) ---------------------------------------
    if (config_->resume_master_secret.empty()) {
      return Fail("server resumed but client has no session state");
    }
    result.resumed = true;
    result.master_secret = config_->resume_master_secret;

    // Optional reissued NewSessionTicket precedes the server Finished.
    if (idx < msgs->size() &&
        (*msgs)[idx].type == HandshakeType::kNewSessionTicket) {
      const auto nst = NewSessionTicket::Parse((*msgs)[idx].body);
      if (!nst) return Fail("bad NewSessionTicket");
      transcript.Add(HandshakeType::kNewSessionTicket, (*msgs)[idx].body);
      ++idx;
      result.ticket_issued = true;
      result.ticket_lifetime_hint = nst->lifetime_hint_seconds;
      result.ticket = nst->ticket;
    }
    if (idx >= msgs->size() ||
        (*msgs)[idx].type != HandshakeType::kFinished) {
      return Fail("expected server Finished");
    }
    const Bytes expected_verify = crypto::ComputeVerifyData(
        result.master_secret, "server finished", transcript.CurrentHash());
    const auto fin = Finished::Parse((*msgs)[idx].body);
    if (!fin || !ConstantTimeEqual(fin->verify_data, expected_verify)) {
      return Fail("server Finished verification failed");
    }
    transcript.Add(HandshakeType::kFinished, (*msgs)[idx].body);
    ++idx;
    if (idx != msgs->size()) return Fail("unexpected trailing messages");

    // Classify the resumption mechanism. When the client offered both, the
    // server echoing the offered session ID is ambiguous (RFC 5077 servers
    // echo it on ticket acceptance too); a reissued NewSessionTicket in the
    // abbreviated flight is the reliable ticket-resumption signal.
    const bool id_echoed = !config_->resume_session_id.empty() &&
                           sh->session_id == config_->resume_session_id;
    result.resumed_via_ticket =
        !config_->resume_ticket.empty() && (!id_echoed || result.ticket_issued);

    result.keys = DeriveSessionKeys(result.master_secret,
                                    result.client_random,
                                    result.server_random);

    // Client Finished closes the handshake.
    const Bytes client_verify = crypto::ComputeVerifyData(
        result.master_secret, "client finished", transcript.CurrentHash());
    Bytes flight2;
    AppendHandshake(flight2, HandshakeType::kFinished, client_verify);
    const Bytes final_response = conn.OnClientFlight(flight2);
    if (conn.Failed()) {
      return Fail("server rejected client Finished: " +
                      std::string(conn.ErrorDetail()),
                  ClassifyTransport(conn.ErrorDetail()));
    }
    if (!final_response.empty()) return Fail("unexpected data after Finished");
    result.ok = true;
    return result;
  }

  // --- Full handshake ----------------------------------------------------
  const auto cert_msg = CertificateMsg::Parse((*msgs)[idx].body);
  if (!cert_msg || cert_msg->chain.empty()) return Fail("bad Certificate");
  transcript.Add(HandshakeType::kCertificate, (*msgs)[idx].body);
  ++idx;
  result.chain = cert_msg->chain;
  if (config_->root_store != nullptr) {
    result.chain_status = config_->root_store->Verify(
        result.chain, config_->server_name, now);
    result.chain_trusted = result.chain_status == pki::VerifyStatus::kOk;
    if (config_->require_trusted && !result.chain_trusted) {
      return Fail(std::string("untrusted chain: ") +
                  pki::ToString(result.chain_status));
    }
  }
  const pki::Certificate& leaf = result.chain.front();
  const crypto::SchnorrScheme& scheme = pki::GetScheme(leaf.data.scheme);

  Bytes premaster;
  Bytes cke_public;
  const bool probe_only = config_->kex_probe_only;
  if (IsForwardSecret(result.suite)) {
    if (idx >= msgs->size() ||
        (*msgs)[idx].type != HandshakeType::kServerKeyExchange) {
      return Fail("expected ServerKeyExchange");
    }
    const auto ske = ServerKeyExchange::Parse((*msgs)[idx].body);
    if (!ske) return Fail("bad ServerKeyExchange");
    if (!crypto::IsKnownGroup(ske->group)) return Fail("unknown group");
    const auto& group =
        crypto::GetKexGroup(static_cast<crypto::NamedGroup>(ske->group));
    // The group family must match the negotiated suite.
    const bool want_ec = result.suite == CipherSuite::kEcdheWithAes128CbcSha256;
    if (want_ec != (group.Kind() == crypto::KexKind::kEcdhe)) {
      return Fail("group/suite family mismatch");
    }
    // Verify the signature over randoms || params with the leaf key.
    const Bytes signed_blob = Concat(
        {result.client_random, result.server_random, ske->SignedParams()});
    const auto sig = scheme.ParseSignature(ske->signature);
    if (!sig || !scheme.Verify(leaf.data.public_key, signed_blob, *sig)) {
      return Fail("ServerKeyExchange signature invalid");
    }
    transcript.Add(HandshakeType::kServerKeyExchange, (*msgs)[idx].body);
    ++idx;
    result.kex_group = ske->group;
    result.server_kex_public = ske->public_value;

    if (!probe_only) {
      const crypto::KexKeyPair client_kex = group.GenerateKeyPair(drbg);
      const auto shared =
          group.SharedSecret(client_kex.private_key, ske->public_value);
      if (!shared) return Fail("degenerate server key-exchange value");
      premaster = *shared;
      cke_public = client_kex.public_value;
    }
  } else if (!probe_only) {
    // Static suite: DH against the certificate key.
    const Bytes scalar = scheme.GenerateDhScalar(drbg);
    const auto shared = scheme.DhShared(scalar, leaf.data.public_key);
    if (!shared) return Fail("bad certificate key for static exchange");
    premaster = *shared;
    cke_public = scheme.DhPublic(scalar);
  }

  if (idx >= msgs->size() ||
      (*msgs)[idx].type != HandshakeType::kServerHelloDone) {
    return Fail("expected ServerHelloDone");
  }
  transcript.Add(HandshakeType::kServerHelloDone, (*msgs)[idx].body);
  ++idx;
  if (idx != msgs->size()) return Fail("unexpected trailing messages");

  if (probe_only) {
    // The scanner has its observables; abandon the connection here.
    result.kex_probe_aborted = true;
    result.ok = true;
    return result;
  }

  result.master_secret = crypto::DeriveMasterSecret(
      premaster, result.client_random, result.server_random);
  result.keys = DeriveSessionKeys(result.master_secret, result.client_random,
                                  result.server_random);

  // --- Client flight 2: ClientKeyExchange + Finished ----------------------
  ClientKeyExchange cke;
  cke.public_value = cke_public;
  const Bytes cke_body = cke.Serialize();
  transcript.Add(HandshakeType::kClientKeyExchange, cke_body);
  const Bytes client_verify = crypto::ComputeVerifyData(
      result.master_secret, "client finished", transcript.CurrentHash());
  transcript.Add(HandshakeType::kFinished, client_verify);

  Bytes flight2;
  AppendHandshake(flight2, HandshakeType::kClientKeyExchange, cke_body);
  AppendHandshake(flight2, HandshakeType::kFinished, client_verify);
  const Bytes response2 = conn.OnClientFlight(flight2);
  if (conn.Failed()) {
    return Fail("server aborted after key exchange: " +
                    std::string(conn.ErrorDetail()),
                ClassifyTransport(conn.ErrorDetail()));
  }
  if (response2.empty()) return Fail("empty server flight 2");
  const auto msgs2 = ParseFlight(response2);
  if (!msgs2 || msgs2->empty()) return Fail("malformed server flight 2");

  std::size_t j = 0;
  if ((*msgs2)[j].type == HandshakeType::kNewSessionTicket) {
    const auto nst = NewSessionTicket::Parse((*msgs2)[j].body);
    if (!nst) return Fail("bad NewSessionTicket");
    transcript.Add(HandshakeType::kNewSessionTicket, (*msgs2)[j].body);
    ++j;
    result.ticket_issued = true;
    result.ticket_lifetime_hint = nst->lifetime_hint_seconds;
    result.ticket = nst->ticket;
  }
  if (j >= msgs2->size() || (*msgs2)[j].type != HandshakeType::kFinished) {
    return Fail("expected server Finished");
  }
  const Bytes expected_verify = crypto::ComputeVerifyData(
      result.master_secret, "server finished", transcript.CurrentHash());
  const auto fin = Finished::Parse((*msgs2)[j].body);
  if (!fin || !ConstantTimeEqual(fin->verify_data, expected_verify)) {
    return Fail("server Finished verification failed");
  }
  ++j;
  if (j != msgs2->size()) return Fail("unexpected trailing messages");

  result.ok = true;
  return result;
}

std::optional<Bytes> TlsClient::Roundtrip(ServerConnection& conn,
                                          const HandshakeResult& hs,
                                          RecordChannel& channel,
                                          ByteView request,
                                          crypto::Drbg& drbg) {
  if (!hs.ok) return std::nullopt;
  const Bytes record = channel.Send(request, drbg);
  const Bytes response = conn.OnApplicationRecord(record);
  if (conn.Failed() || response.empty()) return std::nullopt;
  return channel.Receive(response);
}

}  // namespace tlsharm::tls
