#include "tls/constants.h"

namespace tlsharm::tls {

bool IsForwardSecret(CipherSuite suite) {
  switch (suite) {
    case CipherSuite::kStaticWithAes128CbcSha256:
      return false;
    case CipherSuite::kDheWithAes128CbcSha256:
    case CipherSuite::kEcdheWithAes128CbcSha256:
      return true;
  }
  return false;
}

std::string_view ToString(CipherSuite suite) {
  switch (suite) {
    case CipherSuite::kStaticWithAes128CbcSha256:
      return "TLS_STATIC_WITH_AES_128_CBC_SHA256";
    case CipherSuite::kDheWithAes128CbcSha256:
      return "TLS_DHE_WITH_AES_128_CBC_SHA256";
    case CipherSuite::kEcdheWithAes128CbcSha256:
      return "TLS_ECDHE_WITH_AES_128_CBC_SHA256";
  }
  return "TLS_UNKNOWN";
}

std::string_view ToString(HandshakeType type) {
  switch (type) {
    case HandshakeType::kClientHello: return "ClientHello";
    case HandshakeType::kServerHello: return "ServerHello";
    case HandshakeType::kNewSessionTicket: return "NewSessionTicket";
    case HandshakeType::kCertificate: return "Certificate";
    case HandshakeType::kServerKeyExchange: return "ServerKeyExchange";
    case HandshakeType::kServerHelloDone: return "ServerHelloDone";
    case HandshakeType::kClientKeyExchange: return "ClientKeyExchange";
    case HandshakeType::kFinished: return "Finished";
  }
  return "Unknown";
}

bool IsKnownCipherSuite(std::uint16_t id) {
  switch (static_cast<CipherSuite>(id)) {
    case CipherSuite::kStaticWithAes128CbcSha256:
    case CipherSuite::kDheWithAes128CbcSha256:
    case CipherSuite::kEcdheWithAes128CbcSha256:
      return true;
  }
  return false;
}

}  // namespace tlsharm::tls
