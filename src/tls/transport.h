// Connection-level interfaces between the TLS client, the simulated server
// endpoints, and passive observers.
//
// The transport is synchronous and in-memory: a client pushes a handshake
// flight (serialized handshake messages) and receives the server's response
// flight. Application data travels as protected records. A WireTap sees
// exactly the bytes both sides exchanged — this is the attacker's passive
// collection vantage point.
#pragma once

#include <string_view>

#include "util/bytes.h"

namespace tlsharm::tls {

// Canonical ErrorDetail values for transport-level (not protocol-level)
// connection failures. The client state machine classifies a failed
// connection as reset/timeout by exact match on these; anything else a
// server reports is treated as a deliberate abort (alert).
inline constexpr std::string_view kResetErrorDetail = "connection reset";
inline constexpr std::string_view kTimeoutErrorDetail = "connection timed out";

// Server side of one TLS connection. Implementations live in the server
// module (SSL terminators).
class ServerConnection {
 public:
  virtual ~ServerConnection() = default;

  // Processes one client handshake flight; returns the server's flight.
  // An empty return with Failed() set means the server aborted (alert).
  virtual Bytes OnClientFlight(ByteView flight) = 0;

  // Processes one protected application-data record and returns the
  // server's protected response record (empty + Failed() on error).
  virtual Bytes OnApplicationRecord(ByteView record) = 0;

  virtual bool Failed() const = 0;
  virtual std::string_view ErrorDetail() const = 0;
};

// Passive observer of everything on the wire.
class WireTap {
 public:
  virtual ~WireTap() = default;
  virtual void OnClientBytes(ByteView bytes) = 0;
  virtual void OnServerBytes(ByteView bytes) = 0;
};

// ServerConnection decorator that copies traffic to a WireTap.
class TappedConnection final : public ServerConnection {
 public:
  TappedConnection(ServerConnection& inner, WireTap& tap)
      : inner_(inner), tap_(tap) {}

  Bytes OnClientFlight(ByteView flight) override {
    tap_.OnClientBytes(flight);
    Bytes response = inner_.OnClientFlight(flight);
    tap_.OnServerBytes(response);
    return response;
  }

  Bytes OnApplicationRecord(ByteView record) override {
    tap_.OnClientBytes(record);
    Bytes response = inner_.OnApplicationRecord(record);
    tap_.OnServerBytes(response);
    return response;
  }

  bool Failed() const override { return inner_.Failed(); }
  std::string_view ErrorDetail() const override {
    return inner_.ErrorDetail();
  }

 private:
  ServerConnection& inner_;
  WireTap& tap_;
};

}  // namespace tlsharm::tls
