// Session key schedule.
//
// Key block layout (RFC 5246 §6.3 for an HMAC-SHA-256 / AES-128-CBC suite):
// client MAC(32) || server MAC(32) || client key(16) || server key(16).
// IVs are per-record and explicit, so none are derived here.
#pragma once

#include "tls/constants.h"
#include "util/bytes.h"

namespace tlsharm::tls {

struct SessionKeys {
  Bytes client_mac_key;    // 32
  Bytes server_mac_key;    // 32
  Bytes client_write_key;  // 16
  Bytes server_write_key;  // 16

  bool Valid() const {
    return client_mac_key.size() == 32 && server_mac_key.size() == 32 &&
           client_write_key.size() == 16 && server_write_key.size() == 16;
  }
};

inline constexpr std::size_t kKeyBlockSize = 32 + 32 + 16 + 16;

// Expands the master secret into directional keys. Both endpoints — and the
// attack module, which replays this after recovering a master secret — use
// this single implementation.
SessionKeys DeriveSessionKeys(ByteView master_secret, ByteView client_random,
                              ByteView server_random);

}  // namespace tlsharm::tls
