#include "tls/wire.h"

#include <cassert>

namespace tlsharm::tls {

void Writer::WriteVector(ByteView b, int len_width) {
  assert(len_width >= 1 && len_width <= 3);
  const std::uint64_t max = (1ULL << (8 * len_width)) - 1;
  assert(b.size() <= max);
  (void)max;
  AppendUint(out_, b.size(), len_width);
  Append(out_, b);
}

void Writer::WriteString(std::string_view s, int len_width) {
  WriteVector(ByteView(reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size()),
              len_width);
}

std::uint64_t Reader::ReadUint(int width) {
  if (failed_ || off_ + static_cast<std::size_t>(width) > data_.size()) {
    failed_ = true;
    return 0;
  }
  const std::uint64_t v = tlsharm::ReadUint(data_, off_, width);
  off_ += static_cast<std::size_t>(width);
  return v;
}

Bytes Reader::ReadBytes(std::size_t n) {
  if (failed_ || off_ + n > data_.size()) {
    failed_ = true;
    return {};
  }
  Bytes out(data_.begin() + off_, data_.begin() + off_ + n);
  off_ += n;
  return out;
}

Bytes Reader::ReadVector(int len_width) {
  const std::size_t len = static_cast<std::size_t>(ReadUint(len_width));
  return ReadBytes(len);
}

std::string Reader::ReadString(int len_width) {
  return ToString(ReadVector(len_width));
}

Reader Reader::ReadSubReader(int len_width) {
  const std::size_t len = static_cast<std::size_t>(ReadUint(len_width));
  if (failed_ || off_ + len > data_.size()) {
    failed_ = true;
    return Reader(ByteView{});
  }
  Reader sub(ByteView(data_.data() + off_, len));
  off_ += len;
  return sub;
}

}  // namespace tlsharm::tls
