// Protocol constants for the simulated TLS 1.2 stack.
//
// Cipher suites mirror the three key-exchange families the paper analyzes:
// a non-forward-secret static key exchange (standing in for RSA key
// transport — compromise of the certificate key decrypts past traffic), and
// forward-secret DHE and ECDHE. All suites use AES-128-CBC with
// HMAC-SHA-256 record protection.
#pragma once

#include <cstdint>
#include <string_view>

namespace tlsharm::tls {

inline constexpr std::uint16_t kVersionTls12 = 0x0303;

enum class CipherSuite : std::uint16_t {
  // Stand-in for TLS_RSA_WITH_AES_128_CBC_SHA256: the premaster is agreed
  // against the server's long-term certificate key, so it is not forward
  // secret.
  kStaticWithAes128CbcSha256 = 0x003c,
  kDheWithAes128CbcSha256 = 0x0067,
  kEcdheWithAes128CbcSha256 = 0xc027,
};

enum class HandshakeType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kNewSessionTicket = 4,
  kCertificate = 11,
  kServerKeyExchange = 12,
  kServerHelloDone = 14,
  kClientKeyExchange = 16,
  kFinished = 20,
};

enum class ExtensionType : std::uint16_t {
  kServerName = 0,
  kSessionTicket = 35,
};

enum class AlertCode : std::uint8_t {
  kHandshakeFailure = 40,
  kBadCertificate = 42,
  kDecryptError = 51,
  kProtocolVersion = 70,
  kInternalError = 80,
  kUnrecognizedName = 112,
};

// True when the suite's key exchange is ephemeral (forward secret by
// design, modulo the shortcuts this project measures).
bool IsForwardSecret(CipherSuite suite);

std::string_view ToString(CipherSuite suite);
std::string_view ToString(HandshakeType type);

bool IsKnownCipherSuite(std::uint16_t id);

inline constexpr std::size_t kRandomSize = 32;
inline constexpr std::size_t kMasterSecretSize = 48;
inline constexpr std::size_t kVerifyDataSize = 12;
inline constexpr std::size_t kMaxSessionIdSize = 32;

}  // namespace tlsharm::tls
