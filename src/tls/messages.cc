#include "tls/messages.h"

#include "tls/wire.h"

namespace tlsharm::tls {
namespace {

// Extension framing helpers: type(2) || length(2) || data.
void AppendExtension(Writer& w, ExtensionType type, ByteView data) {
  w.WriteUint(static_cast<std::uint16_t>(type), 2);
  w.WriteVector(data, 2);
}

}  // namespace

Bytes ClientHello::Serialize() const {
  Writer w;
  w.WriteUint(version, 2);
  w.WriteBytes(random);
  w.WriteVector(session_id, 1);
  Writer suites;
  for (std::uint16_t s : cipher_suites) suites.WriteUint(s, 2);
  w.WriteVector(suites.Result(), 2);

  Writer exts;
  if (!server_name.empty()) {
    Writer sni;
    sni.WriteString(server_name, 2);
    AppendExtension(exts, ExtensionType::kServerName, sni.Result());
  }
  if (offer_session_ticket || !session_ticket.empty()) {
    AppendExtension(exts, ExtensionType::kSessionTicket, session_ticket);
  }
  w.WriteVector(exts.Result(), 2);
  return std::move(w).Result();
}

std::optional<ClientHello> ClientHello::Parse(ByteView body) {
  Reader r(body);
  ClientHello ch;
  ch.version = static_cast<std::uint16_t>(r.ReadUint(2));
  ch.random = r.ReadBytes(kRandomSize);
  ch.session_id = r.ReadVector(1);
  if (ch.session_id.size() > kMaxSessionIdSize) return std::nullopt;
  Reader suites = r.ReadSubReader(2);
  while (!suites.AtEnd()) {
    ch.cipher_suites.push_back(static_cast<std::uint16_t>(suites.ReadUint(2)));
  }
  if (suites.Failed()) return std::nullopt;
  Reader exts = r.ReadSubReader(2);
  while (!exts.AtEnd()) {
    const auto type = static_cast<ExtensionType>(exts.ReadUint(2));
    const Bytes data = exts.ReadVector(2);
    if (exts.Failed()) return std::nullopt;
    switch (type) {
      case ExtensionType::kServerName: {
        Reader sni(data);
        ch.server_name = sni.ReadString(2);
        if (sni.Failed()) return std::nullopt;
        break;
      }
      case ExtensionType::kSessionTicket:
        ch.offer_session_ticket = true;
        ch.session_ticket = data;
        break;
    }
  }
  if (r.Failed() || !r.AtEnd()) return std::nullopt;
  return ch;
}

Bytes ServerHello::Serialize() const {
  Writer w;
  w.WriteUint(version, 2);
  w.WriteBytes(random);
  w.WriteVector(session_id, 1);
  w.WriteUint(cipher_suite, 2);
  Writer exts;
  if (session_ticket_ack) {
    AppendExtension(exts, ExtensionType::kSessionTicket, {});
  }
  w.WriteVector(exts.Result(), 2);
  return std::move(w).Result();
}

std::optional<ServerHello> ServerHello::Parse(ByteView body) {
  Reader r(body);
  ServerHello sh;
  sh.version = static_cast<std::uint16_t>(r.ReadUint(2));
  sh.random = r.ReadBytes(kRandomSize);
  sh.session_id = r.ReadVector(1);
  if (sh.session_id.size() > kMaxSessionIdSize) return std::nullopt;
  sh.cipher_suite = static_cast<std::uint16_t>(r.ReadUint(2));
  Reader exts = r.ReadSubReader(2);
  while (!exts.AtEnd()) {
    const auto type = static_cast<ExtensionType>(exts.ReadUint(2));
    const Bytes data = exts.ReadVector(2);
    if (exts.Failed()) return std::nullopt;
    if (type == ExtensionType::kSessionTicket) sh.session_ticket_ack = true;
  }
  if (r.Failed() || !r.AtEnd()) return std::nullopt;
  return sh;
}

Bytes CertificateMsg::Serialize() const {
  Writer inner;
  for (const auto& cert : chain) {
    inner.WriteVector(pki::SerializeCertificate(cert), 3);
  }
  Writer w;
  w.WriteVector(inner.Result(), 3);
  return std::move(w).Result();
}

std::optional<CertificateMsg> CertificateMsg::Parse(ByteView body) {
  Reader r(body);
  Reader list = r.ReadSubReader(3);
  CertificateMsg msg;
  while (!list.AtEnd()) {
    const Bytes cert_bytes = list.ReadVector(3);
    if (list.Failed()) return std::nullopt;
    auto cert = pki::ParseCertificate(cert_bytes);
    if (!cert) return std::nullopt;
    msg.chain.push_back(*std::move(cert));
  }
  if (r.Failed() || !r.AtEnd()) return std::nullopt;
  return msg;
}

Bytes ServerKeyExchange::SignedParams() const {
  Writer w;
  w.WriteUint(group, 2);
  w.WriteVector(public_value, 2);
  return std::move(w).Result();
}

Bytes ServerKeyExchange::Serialize() const {
  Writer w;
  w.WriteUint(group, 2);
  w.WriteVector(public_value, 2);
  w.WriteVector(signature, 2);
  return std::move(w).Result();
}

std::optional<ServerKeyExchange> ServerKeyExchange::Parse(ByteView body) {
  Reader r(body);
  ServerKeyExchange ske;
  ske.group = static_cast<std::uint16_t>(r.ReadUint(2));
  ske.public_value = r.ReadVector(2);
  ske.signature = r.ReadVector(2);
  if (r.Failed() || !r.AtEnd()) return std::nullopt;
  return ske;
}

Bytes ClientKeyExchange::Serialize() const {
  Writer w;
  w.WriteVector(public_value, 2);
  return std::move(w).Result();
}

std::optional<ClientKeyExchange> ClientKeyExchange::Parse(ByteView body) {
  Reader r(body);
  ClientKeyExchange cke;
  cke.public_value = r.ReadVector(2);
  if (r.Failed() || !r.AtEnd()) return std::nullopt;
  return cke;
}

Bytes NewSessionTicket::Serialize() const {
  Writer w;
  w.WriteUint(lifetime_hint_seconds, 4);
  w.WriteVector(ticket, 2);
  return std::move(w).Result();
}

std::optional<NewSessionTicket> NewSessionTicket::Parse(ByteView body) {
  Reader r(body);
  NewSessionTicket nst;
  nst.lifetime_hint_seconds = static_cast<std::uint32_t>(r.ReadUint(4));
  nst.ticket = r.ReadVector(2);
  if (r.Failed() || !r.AtEnd()) return std::nullopt;
  return nst;
}

std::optional<Finished> Finished::Parse(ByteView body) {
  if (body.size() != kVerifyDataSize) return std::nullopt;
  return Finished{.verify_data = Bytes(body.begin(), body.end())};
}

void AppendHandshake(Bytes& flight, HandshakeType type, ByteView body) {
  AppendUint(flight, static_cast<std::uint64_t>(type), 1);
  AppendUint(flight, body.size(), 3);
  Append(flight, body);
}

std::optional<std::vector<HandshakeMessage>> ParseFlight(ByteView flight) {
  std::vector<HandshakeMessage> msgs;
  Reader r(flight);
  while (!r.AtEnd()) {
    const auto type = static_cast<HandshakeType>(r.ReadUint(1));
    const Bytes body = r.ReadVector(3);
    if (r.Failed()) return std::nullopt;
    msgs.push_back(HandshakeMessage{type, body});
  }
  return msgs;
}

}  // namespace tlsharm::tls
