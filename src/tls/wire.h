// TLS-style wire encoding: big-endian integers and length-prefixed vectors
// with 1-, 2- or 3-byte length fields. The Reader latches failure instead of
// throwing so message parsers can decode a full struct and check once.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace tlsharm::tls {

class Writer {
 public:
  void WriteUint(std::uint64_t v, int width) { AppendUint(out_, v, width); }
  void WriteBytes(ByteView b) { Append(out_, b); }
  // Length-prefixed vector with a `len_width`-byte length field.
  void WriteVector(ByteView b, int len_width);
  void WriteString(std::string_view s, int len_width);

  const Bytes& Result() const& { return out_; }
  Bytes&& Result() && { return std::move(out_); }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}
  // A Reader only views its input; constructing one over a temporary
  // buffer leaves it dangling after the full expression. Reject that
  // pattern at compile time.
  explicit Reader(Bytes&&) = delete;

  std::uint64_t ReadUint(int width);
  Bytes ReadBytes(std::size_t n);
  Bytes ReadVector(int len_width);
  std::string ReadString(int len_width);

  // Reads a sub-reader over a length-prefixed region.
  Reader ReadSubReader(int len_width);

  bool Failed() const { return failed_; }
  bool AtEnd() const { return failed_ || off_ == data_.size(); }
  std::size_t Remaining() const {
    return failed_ ? 0 : data_.size() - off_;
  }
  void MarkFailed() { failed_ = true; }

 private:
  ByteView data_;
  std::size_t off_ = 0;
  bool failed_ = false;
};

}  // namespace tlsharm::tls
