// Application-data record protection: AES-128-CBC with an explicit per-
// record IV and an encrypt-then-MAC HMAC-SHA-256 tag over the sequence
// number, header and ciphertext.
//
// Wire format: seq(8) || iv(16) || ciphertext || mac(32).
//
// This is the layer the nation-state attack benches actually break: given a
// recovered master secret plus the two hello randoms captured off the wire,
// an attacker derives the same SessionKeys and calls Unprotect on recorded
// records.
#pragma once

#include <optional>

#include "crypto/drbg.h"
#include "tls/keys.h"
#include "util/bytes.h"

namespace tlsharm::tls {

enum class Direction : std::uint8_t {
  kClientToServer,
  kServerToClient,
};

// Seals one application-data record.
Bytes ProtectRecord(const SessionKeys& keys, Direction dir, std::uint64_t seq,
                    ByteView plaintext, crypto::Drbg& drbg);

// Opens one record; verifies the sequence number and MAC.
std::optional<Bytes> UnprotectRecord(const SessionKeys& keys, Direction dir,
                                     std::uint64_t expected_seq,
                                     ByteView record);

// Stateful wrapper used by endpoints: tracks the send/receive sequence
// numbers for one direction pair.
class RecordChannel {
 public:
  RecordChannel(SessionKeys keys, Direction send_dir)
      : keys_(std::move(keys)), send_dir_(send_dir) {}

  Bytes Send(ByteView plaintext, crypto::Drbg& drbg);
  std::optional<Bytes> Receive(ByteView record);

 private:
  SessionKeys keys_;
  Direction send_dir_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

}  // namespace tlsharm::tls
