#include "tls/record.h"

#include "crypto/aes128.h"
#include "crypto/hmac.h"

namespace tlsharm::tls {
namespace {

constexpr std::size_t kSeqSize = 8;
constexpr std::size_t kIvSize = 16;
constexpr std::size_t kMacSize = 32;

const Bytes& WriteKey(const SessionKeys& keys, Direction dir) {
  return dir == Direction::kClientToServer ? keys.client_write_key
                                           : keys.server_write_key;
}

const Bytes& MacKey(const SessionKeys& keys, Direction dir) {
  return dir == Direction::kClientToServer ? keys.client_mac_key
                                           : keys.server_mac_key;
}

}  // namespace

Bytes ProtectRecord(const SessionKeys& keys, Direction dir, std::uint64_t seq,
                    ByteView plaintext, crypto::Drbg& drbg) {
  Bytes record;
  AppendUint(record, seq, kSeqSize);
  const Bytes iv = drbg.Generate(kIvSize);
  Append(record, iv);
  const Bytes ct =
      crypto::Aes128CbcEncrypt(crypto::ToAesKey(WriteKey(keys, dir)),
                               crypto::ToAesBlock(iv), plaintext);
  Append(record, ct);
  Append(record, crypto::HmacSha256Bytes(MacKey(keys, dir), record));
  return record;
}

std::optional<Bytes> UnprotectRecord(const SessionKeys& keys, Direction dir,
                                     std::uint64_t expected_seq,
                                     ByteView record) {
  if (record.size() <
      kSeqSize + kIvSize + crypto::kAesBlockSize + kMacSize) {
    return std::nullopt;
  }
  const std::size_t body_len = record.size() - kMacSize;
  const Bytes mac = crypto::HmacSha256Bytes(
      MacKey(keys, dir), ByteView(record.data(), body_len));
  if (!ConstantTimeEqual(mac, ByteView(record.data() + body_len, kMacSize))) {
    return std::nullopt;
  }
  if (ReadUint(record, 0, kSeqSize) != expected_seq) return std::nullopt;
  const ByteView iv(record.data() + kSeqSize, kIvSize);
  const ByteView ct(record.data() + kSeqSize + kIvSize,
                    body_len - kSeqSize - kIvSize);
  return crypto::Aes128CbcDecrypt(crypto::ToAesKey(WriteKey(keys, dir)),
                                  crypto::ToAesBlock(iv), ct);
}

Bytes RecordChannel::Send(ByteView plaintext, crypto::Drbg& drbg) {
  return ProtectRecord(keys_, send_dir_, send_seq_++, plaintext, drbg);
}

std::optional<Bytes> RecordChannel::Receive(ByteView record) {
  const Direction recv_dir = send_dir_ == Direction::kClientToServer
                                 ? Direction::kServerToClient
                                 : Direction::kClientToServer;
  auto pt = UnprotectRecord(keys_, recv_dir, recv_seq_, record);
  if (pt) ++recv_seq_;
  return pt;
}

}  // namespace tlsharm::tls
