// TLS 1.2 client state machine.
//
// Drives a full or abbreviated handshake against a ServerConnection and
// reports everything the measurement pipeline needs: the negotiated suite,
// the server's ephemeral key-exchange value, the session ID, any issued
// ticket (with lifetime hint), whether resumption was accepted, and the
// certificate chain's trust status. This is the engine underneath every
// scanner probe — the paper's modified-zgrab equivalent.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "crypto/drbg.h"
#include "pki/root_store.h"
#include "tls/constants.h"
#include "tls/keys.h"
#include "tls/messages.h"
#include "tls/record.h"
#include "tls/transport.h"
#include "util/sim_clock.h"

namespace tlsharm::tls {

struct ClientConfig {
  // Offered cipher suites in preference order.
  std::vector<CipherSuite> offered_suites = {
      CipherSuite::kEcdheWithAes128CbcSha256,
      CipherSuite::kDheWithAes128CbcSha256,
      CipherSuite::kStaticWithAes128CbcSha256,
  };
  // Include the (possibly empty) session-ticket extension.
  bool offer_session_ticket = true;
  // SNI to request; also the name certificates are validated against.
  std::string server_name;
  // When set, chains are verified against this store and the result is
  // recorded (the handshake itself is not aborted on failure — the scanner
  // must observe untrusted sites too; set `require_trusted` to abort).
  const pki::RootStore* root_store = nullptr;
  bool require_trusted = false;

  // Resumption state from a previous HandshakeResult.
  Bytes resume_session_id;     // offer session-ID resumption
  Bytes resume_ticket;         // offer ticket resumption
  Bytes resume_master_secret;  // required with either offer

  // Scanner mode: stop after the server's first flight (the key-exchange
  // value, certificate and session-ID observables are all in hand by then).
  // The result reports ok=true with kex_probe_aborted set; no keys are
  // derived and the server connection is abandoned mid-handshake.
  bool kex_probe_only = false;
};

// Coarse classification of why a handshake failed, for the scanner's
// failure taxonomy. kMalformed covers everything that failed to parse or
// violated the protocol (truncated/corrupted flights, downgrades, forged
// signatures); kAlert is a server that answered but aborted deliberately.
enum class HandshakeErrorClass : std::uint8_t {
  kNone = 0,
  kReset,      // transport reset mid-handshake
  kTimeout,    // transport stalled past its deadline
  kAlert,      // server aborted the handshake deliberately
  kMalformed,  // response failed to parse or violated the protocol
};

inline std::string_view ToString(HandshakeErrorClass c) {
  switch (c) {
    case HandshakeErrorClass::kNone: return "none";
    case HandshakeErrorClass::kReset: return "reset";
    case HandshakeErrorClass::kTimeout: return "timeout";
    case HandshakeErrorClass::kAlert: return "alert";
    case HandshakeErrorClass::kMalformed: return "malformed";
  }
  return "?";
}

struct HandshakeResult {
  bool ok = false;
  std::string error;
  HandshakeErrorClass error_class = HandshakeErrorClass::kNone;

  bool resumed = false;
  bool resumed_via_ticket = false;
  bool kex_probe_aborted = false;  // kex_probe_only cut the handshake short

  CipherSuite suite{};
  // Ephemeral server key-exchange value (empty for static or resumed).
  std::uint16_t kex_group = 0;
  Bytes server_kex_public;

  Bytes client_random;
  Bytes server_random;

  // Session-ID state: the ID in ServerHello (may be empty).
  Bytes session_id;

  // Ticket state.
  bool ticket_issued = false;
  std::uint32_t ticket_lifetime_hint = 0;
  Bytes ticket;

  Bytes master_secret;
  SessionKeys keys;

  pki::CertificateChain chain;
  pki::VerifyStatus chain_status = pki::VerifyStatus::kEmptyChain;
  bool chain_trusted = false;
};

class TlsClient {
 public:
  explicit TlsClient(ClientConfig config)
      : owned_(std::move(config)), config_(&*owned_) {}

  // Borrowing form: the client reads the caller's config in place. The
  // scanner's hot path constructs one TlsClient per probe but reuses a
  // single config object (and its string/vector buffers) across millions of
  // probes; copying it here would reallocate every buffer per probe. The
  // config must outlive the last Handshake call.
  explicit TlsClient(const ClientConfig* config) : config_(config) {}

  // Runs the handshake to completion over `conn`.
  HandshakeResult Handshake(ServerConnection& conn, SimTime now,
                            crypto::Drbg& drbg);

  // Post-handshake application exchange helpers.
  // Sends one request, returns the decrypted response (nullopt on error).
  static std::optional<Bytes> Roundtrip(ServerConnection& conn,
                                        const HandshakeResult& hs,
                                        RecordChannel& channel,
                                        ByteView request, crypto::Drbg& drbg);

 private:
  std::optional<ClientConfig> owned_;  // engaged only by the owning ctor
  const ClientConfig* config_;
};

}  // namespace tlsharm::tls
