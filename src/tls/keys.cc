#include "tls/keys.h"

#include "crypto/prf.h"

namespace tlsharm::tls {

SessionKeys DeriveSessionKeys(ByteView master_secret, ByteView client_random,
                              ByteView server_random) {
  const Bytes block = crypto::DeriveKeyBlock(master_secret, server_random,
                                             client_random, kKeyBlockSize);
  SessionKeys keys;
  auto take = [&block](std::size_t off, std::size_t n) {
    return Bytes(block.begin() + off, block.begin() + off + n);
  };
  keys.client_mac_key = take(0, 32);
  keys.server_mac_key = take(32, 32);
  keys.client_write_key = take(64, 16);
  keys.server_write_key = take(80, 16);
  return keys;
}

}  // namespace tlsharm::tls
