// Session tickets and session-ticket encryption keys (STEKs).
//
// The RFC 5077 recommended construction:
//     key_name(16) || IV(16) || AES-128-CBC(state) || HMAC-SHA-256(32)
// where the MAC covers key_name || IV || ciphertext. The key_name is what
// the paper's scanner records as the "STEK identifier": it changes exactly
// when the server rotates the encryption key, which is what makes STEK
// lifetime measurable from the outside.
//
// Two variant codecs reproduce the implementation diversity the paper
// found: mbedTLS uses a 4-byte key name, and SChannel wraps the state in a
// DPAPI-like structure whose Master Key GUID serves as the identifier
// (§4.3). The scanner's extractor handles all three.
#pragma once

#include <memory>
#include <optional>

#include "crypto/aes128.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "tls/constants.h"
#include "util/bytes.h"
#include "util/sim_clock.h"

namespace tlsharm::tls {

// A session-ticket encryption key set: identifier + AES key + MAC key.
// Apache/Nginx read exactly 48 bytes from the key file: 16-byte name,
// 16-byte AES-128 key, 16-byte HMAC key (we use 32 for HMAC-SHA-256, per
// the RFC 5077 recommendation).
struct Stek {
  Bytes key_name;  // codec-specific width (16 for RFC 5077)
  Bytes aes_key;   // 16 bytes
  Bytes mac_key;   // 32 bytes

  // Per-epoch cached schedules: the expanded AES key and the HMAC midstate
  // prototype, built once at generation so every Seal/Open under this STEK
  // skips the key schedule. Both are pure functions of the key bytes —
  // nullptr (hand-built Steks) or reference mode falls back to expanding
  // from aes_key/mac_key with identical output.
  std::shared_ptr<const crypto::Aes128> aes;
  std::shared_ptr<const crypto::HmacSha256> mac;

  static Stek Generate(crypto::Drbg& drbg, std::size_t key_name_size = 16);

  // (Re)builds the cached schedules from the current key bytes.
  void PrecomputeSchedules();
};

// Plaintext session state carried inside a ticket.
struct TicketState {
  std::uint16_t cipher_suite = 0;
  Bytes master_secret;   // 48 bytes
  SimTime issue_time = 0;

  Bytes Serialize() const;
  static std::optional<TicketState> Parse(ByteView data);
};

// Codec interface: seals/opens tickets and extracts the externally visible
// STEK identifier.
class TicketCodec {
 public:
  virtual ~TicketCodec() = default;

  virtual std::string_view Name() const = 0;
  virtual std::size_t KeyNameSize() const = 0;

  virtual Bytes Seal(const Stek& stek, const TicketState& state,
                     crypto::Drbg& drbg) const = 0;
  // Returns nullopt on wrong key name, bad MAC, or malformed layout.
  virtual std::optional<TicketState> Open(const Stek& stek,
                                          ByteView ticket) const = 0;
  // The identifier a scanner can read without any key.
  virtual std::optional<Bytes> ExtractStekId(ByteView ticket) const = 0;
};

// The three implementations seen in the wild per §4.3.
const TicketCodec& Rfc5077Codec();    // 16-byte key_name (OpenSSL et al.)
const TicketCodec& MbedTlsCodec();    // 4-byte key_name
const TicketCodec& SChannelCodec();   // GUID inside a DPAPI-like wrapper

enum class TicketCodecKind : std::uint8_t {
  kRfc5077 = 0,
  kMbedTls = 1,
  kSChannel = 2,
};

const TicketCodec& GetTicketCodec(TicketCodecKind kind);

// Best-effort STEK-id extraction when the codec is unknown (what a scanner
// does): tries SChannel's structured layout first, falls back to RFC 5077's
// leading 16 bytes. The mbedTLS 4-byte name is a prefix of that, so
// grouping by the 16-byte value remains correct for equality comparisons
// only when tickets come from the same server family; the scanner stores
// both widths.
std::optional<Bytes> ExtractStekIdAuto(ByteView ticket);

}  // namespace tlsharm::tls
