#include "attack/capture.h"

namespace tlsharm::attack {

const char* ToString(CaptureParseFail fail) {
  switch (fail) {
    case CaptureParseFail::kNone:
      return "none";
    case CaptureParseFail::kEmptyLog:
      return "empty_log";
    case CaptureParseFail::kBadFraming:
      return "bad_framing";
    case CaptureParseFail::kBadClientHello:
      return "bad_client_hello";
    case CaptureParseFail::kBadServerHello:
      return "bad_server_hello";
    case CaptureParseFail::kBadServerKex:
      return "bad_server_kex";
    case CaptureParseFail::kBadClientKex:
      return "bad_client_kex";
    case CaptureParseFail::kBadTicket:
      return "bad_ticket";
    case CaptureParseFail::kUnknownMessage:
      return "unknown_message";
    case CaptureParseFail::kIncomplete:
      return "incomplete";
  }
  return "unknown";
}

namespace {

// Marks the capture invalid with a reason. Returning `out` through this
// helper keeps every bail-out path from forgetting the taxonomy bit.
ParsedCapture Fail(ParsedCapture out, CaptureParseFail why) {
  out.valid = false;
  out.parse_fail = why;
  return out;
}

}  // namespace

ParsedCapture ParseCapture(const std::vector<CapturedExchange>& log) {
  ParsedCapture out;
  if (log.empty()) return Fail(std::move(out), CaptureParseFail::kEmptyLog);
  bool client_finished = false;
  bool server_finished = false;
  bool saw_client_hello = false;
  bool saw_server_hello = false;
  bool saw_certificate = false;

  for (const CapturedExchange& exchange : log) {
    const bool handshake_done = client_finished && server_finished;
    if (handshake_done) {
      (exchange.from_client ? out.client_records : out.server_records)
          .push_back(exchange.bytes);
      continue;
    }
    const auto msgs = tls::ParseFlight(exchange.bytes);
    if (!msgs) {
      // Malformed mid-handshake: the flight's length framing is broken, so
      // nothing after this point can be trusted.
      return Fail(std::move(out), CaptureParseFail::kBadFraming);
    }
    for (const tls::HandshakeMessage& msg : *msgs) {
      switch (msg.type) {
        case tls::HandshakeType::kClientHello: {
          const auto ch = tls::ClientHello::Parse(msg.body);
          if (!ch) {
            return Fail(std::move(out), CaptureParseFail::kBadClientHello);
          }
          out.client_hello = *ch;
          saw_client_hello = true;
          break;
        }
        case tls::HandshakeType::kServerHello: {
          const auto sh = tls::ServerHello::Parse(msg.body);
          if (!sh) {
            return Fail(std::move(out), CaptureParseFail::kBadServerHello);
          }
          out.server_hello = *sh;
          saw_server_hello = true;
          break;
        }
        case tls::HandshakeType::kCertificate:
          saw_certificate = true;
          break;
        case tls::HandshakeType::kServerKeyExchange: {
          const auto ske = tls::ServerKeyExchange::Parse(msg.body);
          if (!ske) {
            return Fail(std::move(out), CaptureParseFail::kBadServerKex);
          }
          out.server_kex = *ske;
          break;
        }
        case tls::HandshakeType::kServerHelloDone:
          break;
        case tls::HandshakeType::kClientKeyExchange: {
          const auto cke = tls::ClientKeyExchange::Parse(msg.body);
          if (!cke) {
            return Fail(std::move(out), CaptureParseFail::kBadClientKex);
          }
          out.client_kex = *cke;
          break;
        }
        case tls::HandshakeType::kNewSessionTicket: {
          const auto nst = tls::NewSessionTicket::Parse(msg.body);
          if (!nst) {
            return Fail(std::move(out), CaptureParseFail::kBadTicket);
          }
          out.new_session_ticket = *nst;
          break;
        }
        case tls::HandshakeType::kFinished:
          (exchange.from_client ? client_finished : server_finished) = true;
          break;
        default:
          // A type byte no TLS 1.2 handshake uses: a bit flip landed on the
          // message header. Refusing the whole capture beats misparsing.
          return Fail(std::move(out), CaptureParseFail::kUnknownMessage);
      }
    }
  }
  out.abbreviated = !saw_certificate;
  out.valid = saw_client_hello && saw_server_hello && client_finished &&
              server_finished;
  out.parse_fail =
      out.valid ? CaptureParseFail::kNone : CaptureParseFail::kIncomplete;
  return out;
}

}  // namespace tlsharm::attack
