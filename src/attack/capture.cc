#include "attack/capture.h"

namespace tlsharm::attack {

ParsedCapture ParseCapture(const std::vector<CapturedExchange>& log) {
  ParsedCapture out;
  bool client_finished = false;
  bool server_finished = false;
  bool saw_client_hello = false;
  bool saw_server_hello = false;
  bool saw_certificate = false;

  for (const CapturedExchange& exchange : log) {
    const bool handshake_done = client_finished && server_finished;
    if (handshake_done) {
      (exchange.from_client ? out.client_records : out.server_records)
          .push_back(exchange.bytes);
      continue;
    }
    const auto msgs = tls::ParseFlight(exchange.bytes);
    if (!msgs) return out;  // malformed mid-handshake: give up
    for (const tls::HandshakeMessage& msg : *msgs) {
      switch (msg.type) {
        case tls::HandshakeType::kClientHello: {
          const auto ch = tls::ClientHello::Parse(msg.body);
          if (!ch) return out;
          out.client_hello = *ch;
          saw_client_hello = true;
          break;
        }
        case tls::HandshakeType::kServerHello: {
          const auto sh = tls::ServerHello::Parse(msg.body);
          if (!sh) return out;
          out.server_hello = *sh;
          saw_server_hello = true;
          break;
        }
        case tls::HandshakeType::kCertificate:
          saw_certificate = true;
          break;
        case tls::HandshakeType::kServerKeyExchange: {
          const auto ske = tls::ServerKeyExchange::Parse(msg.body);
          if (!ske) return out;
          out.server_kex = *ske;
          break;
        }
        case tls::HandshakeType::kServerHelloDone:
          break;
        case tls::HandshakeType::kClientKeyExchange: {
          const auto cke = tls::ClientKeyExchange::Parse(msg.body);
          if (!cke) return out;
          out.client_kex = *cke;
          break;
        }
        case tls::HandshakeType::kNewSessionTicket: {
          const auto nst = tls::NewSessionTicket::Parse(msg.body);
          if (!nst) return out;
          out.new_session_ticket = *nst;
          break;
        }
        case tls::HandshakeType::kFinished:
          (exchange.from_client ? client_finished : server_finished) = true;
          break;
      }
    }
  }
  out.abbreviated = !saw_certificate;
  out.valid = saw_client_hello && saw_server_hello && client_finished &&
              server_finished;
  return out;
}

}  // namespace tlsharm::attack
