#include "attack/record.h"

namespace tlsharm::attack {

CaptureRecord SummarizeCapture(std::uint32_t domain, SimTime time,
                               std::uint32_t endpoint,
                               const std::vector<CapturedExchange>& log) {
  CaptureRecord out;
  out.domain = domain;
  out.time = time;
  out.endpoint = endpoint;
  for (const CapturedExchange& exchange : log) {
    out.wire_bytes += exchange.bytes.size();
  }

  const ParsedCapture parsed = ParseCapture(log);
  out.valid = parsed.valid;
  out.parse_fail = parsed.parse_fail;
  if (!parsed.valid) return out;

  out.abbreviated = parsed.abbreviated;
  out.suite = parsed.server_hello.cipher_suite;
  out.client_random = parsed.client_hello.random;
  out.server_random = parsed.server_hello.random;
  out.session_id = parsed.server_hello.session_id;
  out.ticket = parsed.RelevantTicket();
  if (parsed.new_session_ticket) {
    out.ticket_lifetime_hint = parsed.new_session_ticket->lifetime_hint_seconds;
  }
  if (parsed.server_kex) {
    out.kex_group = static_cast<std::uint16_t>(parsed.server_kex->group);
    out.server_kex = parsed.server_kex->public_value;
  }
  if (parsed.client_kex) out.client_kex = parsed.client_kex->public_value;

  out.client_records = static_cast<std::uint32_t>(parsed.client_records.size());
  out.server_records = static_cast<std::uint32_t>(parsed.server_records.size());
  for (const Bytes& record : parsed.client_records) {
    out.client_record_bytes += record.size();
  }
  for (const Bytes& record : parsed.server_records) {
    out.server_record_bytes += record.size();
  }
  return out;
}

ParsedCapture ReconstructCapture(const CaptureRecord& record) {
  ParsedCapture out;
  out.valid = record.valid;
  out.parse_fail = record.parse_fail;
  if (!record.valid) return out;
  out.abbreviated = record.abbreviated;
  out.client_hello.random = record.client_random;
  // The record keeps only the relevant ticket; presenting it in the
  // ClientHello slot makes RelevantTicket() find it either way.
  out.client_hello.session_ticket = record.ticket;
  out.server_hello.random = record.server_random;
  out.server_hello.session_id = record.session_id;
  out.server_hello.cipher_suite = record.suite;
  if (!record.server_kex.empty()) {
    tls::ServerKeyExchange ske;
    ske.group = record.kex_group;
    ske.public_value = record.server_kex;
    out.server_kex = ske;
  }
  if (!record.client_kex.empty()) {
    tls::ClientKeyExchange cke;
    cke.public_value = record.client_kex;
    out.client_kex = cke;
  }
  return out;
}

}  // namespace tlsharm::attack
