#include "attack/decrypt.h"

#include "crypto/prf.h"
#include "tls/record.h"

namespace tlsharm::attack {

const char* ToString(DecryptFailureClass fail) {
  switch (fail) {
    case DecryptFailureClass::kNone:
      return "none";
    case DecryptFailureClass::kCaptureInvalid:
      return "capture_invalid";
    case DecryptFailureClass::kNoTicket:
      return "no_ticket";
    case DecryptFailureClass::kWrongStek:
      return "wrong_stek";
    case DecryptFailureClass::kNoSessionId:
      return "no_session_id";
    case DecryptFailureClass::kCacheMiss:
      return "cache_miss";
    case DecryptFailureClass::kNoKex:
      return "no_kex";
    case DecryptFailureClass::kKexMismatch:
      return "kex_mismatch";
    case DecryptFailureClass::kDegenerateClient:
      return "degenerate_client";
    case DecryptFailureClass::kRecordCorrupt:
      return "record_corrupt";
  }
  return "unknown";
}

DecryptedSession DecryptWithMasterSecret(const ParsedCapture& capture,
                                         ByteView master_secret) {
  DecryptedSession out;
  if (!capture.valid) {
    out.failure = DecryptFailureClass::kCaptureInvalid;
    return out;
  }
  out.master_secret = Bytes(master_secret.begin(), master_secret.end());
  out.keys = tls::DeriveSessionKeys(master_secret, capture.client_hello.random,
                                    capture.server_hello.random);
  std::uint64_t seq = 0;
  for (const Bytes& record : capture.client_records) {
    const auto pt = tls::UnprotectRecord(
        out.keys, tls::Direction::kClientToServer, seq++, record);
    if (!pt) {
      out.failure = DecryptFailureClass::kRecordCorrupt;
      return out;
    }
    out.client_plaintext.push_back(*pt);
  }
  seq = 0;
  for (const Bytes& record : capture.server_records) {
    const auto pt = tls::UnprotectRecord(
        out.keys, tls::Direction::kServerToClient, seq++, record);
    if (!pt) {
      out.failure = DecryptFailureClass::kRecordCorrupt;
      return out;
    }
    out.server_plaintext.push_back(*pt);
  }
  out.ok = true;
  return out;
}

DecryptedSession StekDecryptor::Decrypt(const ParsedCapture& capture) const {
  DecryptedSession out;
  const Bytes ticket = capture.RelevantTicket();
  if (ticket.empty()) {
    out.failure = DecryptFailureClass::kNoTicket;
    return out;
  }
  const auto state = tls::GetTicketCodec(codec_).Open(stek_, ticket);
  if (!state) {
    out.failure = DecryptFailureClass::kWrongStek;
    return out;
  }
  return DecryptWithMasterSecret(capture, state->master_secret);
}

CacheDecryptor::CacheDecryptor(
    const std::map<Bytes, server::CachedSession>& dump) {
  for (const auto& [session_id, session] : dump) {
    master_by_session_id_[session_id] = session.master_secret;
  }
}

DecryptedSession CacheDecryptor::Decrypt(const ParsedCapture& capture) const {
  DecryptedSession out;
  const Bytes& session_id = capture.server_hello.session_id;
  if (session_id.empty()) {
    out.failure = DecryptFailureClass::kNoSessionId;
    return out;
  }
  const auto it = master_by_session_id_.find(session_id);
  if (it == master_by_session_id_.end()) {
    out.failure = DecryptFailureClass::kCacheMiss;
    return out;
  }
  return DecryptWithMasterSecret(capture, it->second);
}

DecryptedSession DhDecryptor::Decrypt(const ParsedCapture& capture) const {
  DecryptedSession out;
  if (!capture.server_kex || !capture.client_kex) {
    out.failure = DecryptFailureClass::kNoKex;
    return out;
  }
  if (capture.server_kex->public_value != public_) {
    out.failure = DecryptFailureClass::kKexMismatch;
    return out;
  }
  const auto& group = crypto::GetKexGroup(group_);
  const auto premaster =
      group.SharedSecret(private_, capture.client_kex->public_value);
  if (!premaster) {
    out.failure = DecryptFailureClass::kDegenerateClient;
    return out;
  }
  const Bytes master = crypto::DeriveMasterSecret(
      *premaster, capture.client_hello.random, capture.server_hello.random);
  return DecryptWithMasterSecret(capture, master);
}

}  // namespace tlsharm::attack
