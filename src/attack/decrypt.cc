#include "attack/decrypt.h"

#include "crypto/prf.h"
#include "tls/record.h"

namespace tlsharm::attack {

DecryptedSession DecryptWithMasterSecret(const ParsedCapture& capture,
                                         ByteView master_secret) {
  DecryptedSession out;
  if (!capture.valid) {
    out.failure = "capture incomplete";
    return out;
  }
  out.master_secret = Bytes(master_secret.begin(), master_secret.end());
  out.keys = tls::DeriveSessionKeys(master_secret, capture.client_hello.random,
                                    capture.server_hello.random);
  std::uint64_t seq = 0;
  for (const Bytes& record : capture.client_records) {
    const auto pt = tls::UnprotectRecord(
        out.keys, tls::Direction::kClientToServer, seq++, record);
    if (!pt) {
      out.failure = "client record failed to decrypt (wrong secret?)";
      return out;
    }
    out.client_plaintext.push_back(*pt);
  }
  seq = 0;
  for (const Bytes& record : capture.server_records) {
    const auto pt = tls::UnprotectRecord(
        out.keys, tls::Direction::kServerToClient, seq++, record);
    if (!pt) {
      out.failure = "server record failed to decrypt (wrong secret?)";
      return out;
    }
    out.server_plaintext.push_back(*pt);
  }
  out.ok = true;
  return out;
}

DecryptedSession StekDecryptor::Decrypt(const ParsedCapture& capture) const {
  DecryptedSession out;
  const Bytes ticket = capture.RelevantTicket();
  if (ticket.empty()) {
    out.failure = "no session ticket on the wire";
    return out;
  }
  const auto state = tls::GetTicketCodec(codec_).Open(stek_, ticket);
  if (!state) {
    out.failure = "ticket not sealed under the stolen STEK";
    return out;
  }
  return DecryptWithMasterSecret(capture, state->master_secret);
}

CacheDecryptor::CacheDecryptor(
    const std::map<Bytes, server::CachedSession>& dump) {
  for (const auto& [session_id, session] : dump) {
    master_by_session_id_[session_id] = session.master_secret;
  }
}

DecryptedSession CacheDecryptor::Decrypt(const ParsedCapture& capture) const {
  DecryptedSession out;
  const Bytes& session_id = capture.server_hello.session_id;
  if (session_id.empty()) {
    out.failure = "connection carried no session ID";
    return out;
  }
  const auto it = master_by_session_id_.find(session_id);
  if (it == master_by_session_id_.end()) {
    out.failure = "session ID not present in the dumped cache";
    return out;
  }
  return DecryptWithMasterSecret(capture, it->second);
}

DecryptedSession DhDecryptor::Decrypt(const ParsedCapture& capture) const {
  DecryptedSession out;
  if (!capture.server_kex || !capture.client_kex) {
    out.failure = "no ephemeral key exchange on the wire";
    return out;
  }
  if (capture.server_kex->public_value != public_) {
    out.failure = "server used a different ephemeral value";
    return out;
  }
  const auto& group = crypto::GetKexGroup(group_);
  const auto premaster =
      group.SharedSecret(private_, capture.client_kex->public_value);
  if (!premaster) {
    out.failure = "degenerate client value";
    return out;
  }
  const Bytes master = crypto::DeriveMasterSecret(
      *premaster, capture.client_hello.random, capture.server_hello.random);
  return DecryptWithMasterSecret(capture, master);
}

}  // namespace tlsharm::attack
