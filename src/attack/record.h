// The adversary's recording plane: one compact CaptureRecord per tapped
// connection — everything a passive observer keeps from the wire that a
// later compromise could act on (hello randoms, session ID, ticket blob,
// key-exchange values, record byte counts), plus the parse-failure
// taxonomy for fault-injected flights.
//
// Records deliberately drop the protected application payload: the paper's
// question is *which* connections become decryptable, and key recovery is
// decided entirely by the handshake metadata. ReconstructCapture rebuilds
// a ParsedCapture from a record so the real decryptors (decrypt.h) run
// unchanged against the archive; with no stored records, a reconstructed
// decrypt succeeds exactly when the key material is recovered.
//
// CaptureSink is the streaming contract between the scan engine and any
// archive backend (the in-memory buffer here, the columnar tape in
// warehouse/capture.h), mirroring scanner::StoreWriter: Append days
// non-decreasing in canonical order, EndDay once per day, Finish last.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/capture.h"
#include "util/sim_clock.h"

namespace tlsharm::attack {

struct CaptureRecord {
  std::uint32_t domain = 0;   // scanner DomainIndex
  SimTime time = 0;           // when the connection was recorded
  std::uint32_t endpoint = 0; // terminator instance that served it

  bool valid = false;
  CaptureParseFail parse_fail = CaptureParseFail::kNone;
  bool abbreviated = false;
  std::uint16_t suite = 0;

  Bytes client_random;
  Bytes server_random;
  Bytes session_id;           // ServerHello session ID ("" when none)
  Bytes ticket;               // RelevantTicket(): presented or issued
  std::uint32_t ticket_lifetime_hint = 0;
  std::uint16_t kex_group = 0;
  Bytes server_kex;           // server's ephemeral public value
  Bytes client_kex;           // client's ephemeral public value

  // Traffic volume the adversary buffered for this connection.
  std::uint64_t wire_bytes = 0;         // everything, handshake included
  std::uint32_t client_records = 0;     // protected app records per side
  std::uint32_t server_records = 0;
  std::uint64_t client_record_bytes = 0;
  std::uint64_t server_record_bytes = 0;

  bool operator==(const CaptureRecord&) const = default;
};

// Parses the tapped byte log and folds it into a record.
CaptureRecord SummarizeCapture(std::uint32_t domain, SimTime time,
                               std::uint32_t endpoint,
                               const std::vector<CapturedExchange>& log);

// Rebuilds the decryptor-facing view of a record. The protected records
// are not stored, so client/server_records stay empty — DecryptedSession
// then reports key recovery (ok + master secret) without plaintext.
ParsedCapture ReconstructCapture(const CaptureRecord& record);

// Streaming archive contract (see header comment for the call protocol).
class CaptureSink {
 public:
  virtual ~CaptureSink() = default;
  virtual void Append(int day, const CaptureRecord& record) = 0;
  virtual void EndDay(int day) = 0;
  virtual void Finish() = 0;
};

// Keeps every record in memory — the "live" side of the live-vs-replayed
// harm-curve identity check, and the simplest test double.
class CaptureBufferSink final : public CaptureSink {
 public:
  void Append(int day, const CaptureRecord& record) override {
    records_.push_back(record);
    days_.push_back(day);
  }
  void EndDay(int) override {}
  void Finish() override {}

  const std::vector<CaptureRecord>& Records() const { return records_; }
  const std::vector<int>& Days() const { return days_; }

 private:
  std::vector<CaptureRecord> records_;
  std::vector<int> days_;
};

}  // namespace tlsharm::attack
