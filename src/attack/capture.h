// Passive network capture — the attacker's vantage point (§7.1's
// XKEYSCORE/TEMPORA-style buffer).
//
// PassiveCapture is a WireTap that records every byte a connection
// exchanged. ParseCapture then recovers exactly what a passive observer
// can see in the clear: hello randoms, the session ID, the (encrypted)
// session ticket, the server's key-exchange value, the client's
// key-exchange value, and the protected application records. Nothing here
// uses any endpoint secret.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tls/messages.h"
#include "tls/transport.h"

namespace tlsharm::attack {

struct CapturedExchange {
  bool from_client = false;
  Bytes bytes;
};

class PassiveCapture final : public tls::WireTap {
 public:
  void OnClientBytes(ByteView bytes) override {
    if (!bytes.empty()) {
      log_.push_back({true, Bytes(bytes.begin(), bytes.end())});
    }
  }
  void OnServerBytes(ByteView bytes) override {
    if (!bytes.empty()) {
      log_.push_back({false, Bytes(bytes.begin(), bytes.end())});
    }
  }

  const std::vector<CapturedExchange>& Log() const { return log_; }
  void Clear() { log_.clear(); }

 private:
  std::vector<CapturedExchange> log_;
};

// Why a captured byte stream failed to parse into a complete handshake.
// Fault injection corrupts and truncates flights on the wire, so the
// parser must classify every malformed capture instead of misparsing it.
enum class CaptureParseFail : std::uint8_t {
  kNone = 0,           // parsed cleanly, capture is valid
  kEmptyLog = 1,       // nothing on the wire at all
  kBadFraming = 2,     // a mid-handshake flight failed length framing
  kBadClientHello = 3,
  kBadServerHello = 4,
  kBadServerKex = 5,
  kBadClientKex = 6,
  kBadTicket = 7,
  kUnknownMessage = 8,  // handshake type byte outside the protocol
  kIncomplete = 9,      // framing OK but the handshake never finished
};
inline constexpr int kCaptureParseFailCount = 10;

const char* ToString(CaptureParseFail fail);

// Everything a passive observer can parse out of one connection.
struct ParsedCapture {
  bool valid = false;
  CaptureParseFail parse_fail = CaptureParseFail::kNone;

  tls::ClientHello client_hello;
  tls::ServerHello server_hello;
  bool abbreviated = false;  // no Certificate seen

  std::optional<tls::ServerKeyExchange> server_kex;
  std::optional<tls::ClientKeyExchange> client_kex;
  std::optional<tls::NewSessionTicket> new_session_ticket;

  // Protected application records in arrival order per direction.
  std::vector<Bytes> client_records;
  std::vector<Bytes> server_records;

  // The ticket whose STEK protects this session's master secret: the one
  // the client presented (abbreviated) or the one the server issued.
  Bytes RelevantTicket() const {
    if (!client_hello.session_ticket.empty()) {
      return client_hello.session_ticket;
    }
    if (new_session_ticket) return new_session_ticket->ticket;
    return {};
  }
};

ParsedCapture ParseCapture(const std::vector<CapturedExchange>& log);

}  // namespace tlsharm::attack
