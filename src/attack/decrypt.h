// Retrospective decryption of captured TLS connections after a server-side
// secret compromise — the attack whose feasibility the paper measures.
//
// Three compromise vectors, matching §6.1–§6.3:
//   StekDecryptor   — a stolen session-ticket encryption key opens the
//                     captured ticket, yielding the master secret;
//   CacheDecryptor  — a dumped server session cache maps a captured session
//                     ID to its master secret;
//   DhDecryptor     — a stolen reused (EC)DHE private value recomputes the
//                     premaster from the captured client public value.
// All three end the same way: master secret + captured hello randoms →
// session keys → plaintext of every recorded application record.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "attack/capture.h"
#include "crypto/kex.h"
#include "server/session_cache.h"
#include "tls/keys.h"
#include "tls/ticket.h"

namespace tlsharm::attack {

// Why a captured connection survived the compromise — a closed taxonomy so
// the adversary engine can aggregate survivor classes into harm curves
// instead of string-matching free-form reasons.
enum class DecryptFailureClass : std::uint8_t {
  kNone = 0,             // decryption succeeded
  kCaptureInvalid = 1,   // capture incomplete or corrupted (see parse_fail)
  kNoTicket = 2,         // no session ticket on the wire
  kWrongStek = 3,        // ticket sealed under a different (rotated) STEK
  kNoSessionId = 4,      // connection carried no session ID
  kCacheMiss = 5,        // session ID absent from the dumped cache (evicted)
  kNoKex = 6,            // no ephemeral key exchange on the wire
  kKexMismatch = 7,      // server used a different (rotated) ephemeral value
  kDegenerateClient = 8, // client public value yields no shared secret
  kRecordCorrupt = 9,    // keys recovered but a record failed to open
};
inline constexpr int kDecryptFailureClassCount = 10;

const char* ToString(DecryptFailureClass fail);

struct DecryptedSession {
  bool ok = false;
  // Why decryption was not possible (kNone when ok).
  DecryptFailureClass failure = DecryptFailureClass::kNone;

  Bytes master_secret;
  tls::SessionKeys keys;
  std::vector<Bytes> client_plaintext;
  std::vector<Bytes> server_plaintext;
};

// Shared tail of every vector: derive keys from a recovered master secret
// and open the captured records.
DecryptedSession DecryptWithMasterSecret(const ParsedCapture& capture,
                                         ByteView master_secret);

class StekDecryptor {
 public:
  StekDecryptor(tls::TicketCodecKind codec, tls::Stek stolen_stek)
      : codec_(codec), stek_(std::move(stolen_stek)) {}

  DecryptedSession Decrypt(const ParsedCapture& capture) const;

 private:
  tls::TicketCodecKind codec_;
  tls::Stek stek_;
};

class CacheDecryptor {
 public:
  // `dump` is the compromised server-side session cache contents.
  explicit CacheDecryptor(
      const std::map<Bytes, server::CachedSession>& dump);

  DecryptedSession Decrypt(const ParsedCapture& capture) const;

 private:
  std::map<Bytes, Bytes> master_by_session_id_;
};

class DhDecryptor {
 public:
  // The stolen reused server (EC)DHE private value and its public value.
  DhDecryptor(crypto::NamedGroup group, Bytes stolen_private,
              Bytes server_public)
      : group_(group),
        private_(std::move(stolen_private)),
        public_(std::move(server_public)) {}

  DecryptedSession Decrypt(const ParsedCapture& capture) const;

 private:
  crypto::NamedGroup group_;
  Bytes private_;
  Bytes public_;
};

}  // namespace tlsharm::attack
