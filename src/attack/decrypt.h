// Retrospective decryption of captured TLS connections after a server-side
// secret compromise — the attack whose feasibility the paper measures.
//
// Three compromise vectors, matching §6.1–§6.3:
//   StekDecryptor   — a stolen session-ticket encryption key opens the
//                     captured ticket, yielding the master secret;
//   CacheDecryptor  — a dumped server session cache maps a captured session
//                     ID to its master secret;
//   DhDecryptor     — a stolen reused (EC)DHE private value recomputes the
//                     premaster from the captured client public value.
// All three end the same way: master secret + captured hello randoms →
// session keys → plaintext of every recorded application record.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "attack/capture.h"
#include "crypto/kex.h"
#include "server/session_cache.h"
#include "tls/keys.h"
#include "tls/ticket.h"

namespace tlsharm::attack {

struct DecryptedSession {
  bool ok = false;
  std::string failure;  // why decryption was not possible

  Bytes master_secret;
  tls::SessionKeys keys;
  std::vector<Bytes> client_plaintext;
  std::vector<Bytes> server_plaintext;
};

// Shared tail of every vector: derive keys from a recovered master secret
// and open the captured records.
DecryptedSession DecryptWithMasterSecret(const ParsedCapture& capture,
                                         ByteView master_secret);

class StekDecryptor {
 public:
  StekDecryptor(tls::TicketCodecKind codec, tls::Stek stolen_stek)
      : codec_(codec), stek_(std::move(stolen_stek)) {}

  DecryptedSession Decrypt(const ParsedCapture& capture) const;

 private:
  tls::TicketCodecKind codec_;
  tls::Stek stek_;
};

class CacheDecryptor {
 public:
  // `dump` is the compromised server-side session cache contents.
  explicit CacheDecryptor(
      const std::map<Bytes, server::CachedSession>& dump);

  DecryptedSession Decrypt(const ParsedCapture& capture) const;

 private:
  std::map<Bytes, Bytes> master_by_session_id_;
};

class DhDecryptor {
 public:
  // The stolen reused server (EC)DHE private value and its public value.
  DhDecryptor(crypto::NamedGroup group, Bytes stolen_private,
              Bytes server_public)
      : group_(group),
        private_(std::move(stolen_private)),
        public_(std::move(server_public)) {}

  DecryptedSession Decrypt(const ParsedCapture& capture) const;

 private:
  crypto::NamedGroup group_;
  Bytes private_;
  Bytes public_;
};

}  // namespace tlsharm::attack
