#include "tls13/psk.h"

#include "crypto/aes128.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "tls/ticket.h"
#include "tls/wire.h"

namespace tlsharm::tls13 {
namespace {

const Bytes kZeros(crypto::kSha256DigestSize, 0);

}  // namespace

Bytes DeriveResumptionMasterSecret(ByteView master_secret,
                                   ByteView transcript_hash) {
  return crypto::DeriveSecret(master_secret, "res master", transcript_hash);
}

Bytes DerivePsk(ByteView resumption_master, ByteView ticket_nonce) {
  return crypto::HkdfExpandLabel(resumption_master, "resumption",
                                 ticket_nonce, crypto::kSha256DigestSize);
}

Bytes DeriveEarlySecret(ByteView psk) { return crypto::HkdfExtract({}, psk); }

Bytes DeriveClientEarlyTrafficSecret(ByteView early_secret,
                                     ByteView client_hello_hash) {
  return crypto::DeriveSecret(early_secret, "c e traffic", client_hello_hash);
}

Bytes DeriveResumedTrafficSecret(ByteView psk, ByteView dhe_shared,
                                 ByteView transcript_hash) {
  const Bytes early_secret = DeriveEarlySecret(psk);
  const Bytes derived = crypto::DeriveSecret(early_secret, "derived", {});
  // psk_ke mixes zeros where psk_dhe_ke mixes the fresh shared secret —
  // this is precisely why psk_ke inherits the PSK's whole lifetime.
  const Bytes handshake_secret =
      crypto::HkdfExtract(derived, dhe_shared.empty() ? kZeros : dhe_shared);
  const Bytes derived2 =
      crypto::DeriveSecret(handshake_secret, "derived", {});
  const Bytes master = crypto::HkdfExtract(derived2, kZeros);
  return crypto::DeriveSecret(master, "s ap traffic", transcript_hash);
}

// --- identity sealing ---------------------------------------------------------

Bytes SealPskState(const tls::Stek& stek, ByteView resumption_master,
                   ByteView nonce, SimTime issued, crypto::Drbg& drbg) {
  // Reuses the RFC 5077 recommended construction (that's the paper's
  // point: 1.3's self-encrypted identities ARE session tickets).
  tls::Writer w;
  w.WriteVector(resumption_master, 1);
  w.WriteVector(nonce, 1);
  w.WriteUint(static_cast<std::uint64_t>(issued), 8);
  const Bytes plaintext = std::move(w).Result();

  Bytes out = stek.key_name;
  const Bytes iv = drbg.Generate(16);
  Append(out, iv);
  Append(out, crypto::Aes128CbcEncrypt(crypto::ToAesKey(stek.aes_key),
                                       crypto::ToAesBlock(iv), plaintext));
  Append(out, crypto::HmacSha256Bytes(stek.mac_key, out));
  return out;
}

std::optional<OpenedPskState> OpenPskState(const tls::Stek& stek,
                                           ByteView identity) {
  const std::size_t key_name_size = stek.key_name.size();
  if (identity.size() < key_name_size + 16 + 16 + 32) return std::nullopt;
  if (!ConstantTimeEqual(ByteView(identity.data(), key_name_size),
                         stek.key_name)) {
    return std::nullopt;
  }
  const std::size_t body = identity.size() - 32;
  if (!ConstantTimeEqual(
          crypto::HmacSha256Bytes(stek.mac_key,
                                  ByteView(identity.data(), body)),
          ByteView(identity.data() + body, 32))) {
    return std::nullopt;
  }
  const ByteView iv(identity.data() + key_name_size, 16);
  const ByteView ct(identity.data() + key_name_size + 16,
                    body - key_name_size - 16);
  const auto pt = crypto::Aes128CbcDecrypt(crypto::ToAesKey(stek.aes_key),
                                           crypto::ToAesBlock(iv), ct);
  if (!pt) return std::nullopt;
  tls::Reader r(*pt);
  OpenedPskState state;
  state.resumption_master = r.ReadVector(1);
  state.ticket_nonce = r.ReadVector(1);
  state.issued = static_cast<SimTime>(r.ReadUint(8));
  if (r.Failed() || !r.AtEnd()) return std::nullopt;
  return state;
}

// --- 0-RTT records --------------------------------------------------------------

Bytes ProtectEarlyData(ByteView early_traffic_secret, ByteView plaintext,
                       crypto::Drbg& drbg) {
  const Bytes key =
      crypto::HkdfExpandLabel(early_traffic_secret, "key", {}, 16);
  const Bytes mac_key =
      crypto::HkdfExpandLabel(early_traffic_secret, "mac", {}, 32);
  Bytes record;
  const Bytes iv = drbg.Generate(16);
  Append(record, iv);
  Append(record, crypto::Aes128CbcEncrypt(crypto::ToAesKey(key),
                                          crypto::ToAesBlock(iv), plaintext));
  Append(record, crypto::HmacSha256Bytes(mac_key, record));
  return record;
}

std::optional<Bytes> UnprotectEarlyData(ByteView early_traffic_secret,
                                        ByteView record) {
  if (record.size() < 16 + 16 + 32) return std::nullopt;
  const Bytes key =
      crypto::HkdfExpandLabel(early_traffic_secret, "key", {}, 16);
  const Bytes mac_key =
      crypto::HkdfExpandLabel(early_traffic_secret, "mac", {}, 32);
  const std::size_t body = record.size() - 32;
  if (!ConstantTimeEqual(
          crypto::HmacSha256Bytes(mac_key, ByteView(record.data(), body)),
          ByteView(record.data() + body, 32))) {
    return std::nullopt;
  }
  return crypto::Aes128CbcDecrypt(
      crypto::ToAesKey(key), crypto::ToAesBlock(ByteView(record.data(), 16)),
      ByteView(record.data() + 16, body - 16));
}

// --- server ----------------------------------------------------------------------

Tls13Server::Tls13Server(Tls13ServerConfig config, ByteView seed)
    : config_(config),
      drbg_(Concat({seed, ToBytes("/tls13")})),
      steks_(config.stek, tls::TicketCodecKind::kRfc5077,
             Concat({seed, ToBytes("/stek13")})) {}

Tls13Ticket Tls13Server::IssueTicket(ByteView resumption_master,
                                     SimTime now) {
  Tls13Ticket ticket;
  ticket.ticket_nonce = drbg_.Generate(8);
  ticket.lifetime = std::min(config_.psk_lifetime, kDraft15MaxLifetime);
  ticket.issued = now;
  if (config_.identity_kind == IdentityKind::kSelfEncrypted) {
    ticket.identity = SealPskState(steks_.IssuingStek(now), resumption_master,
                                   ticket.ticket_nonce, now, drbg_);
  } else {
    ticket.identity = drbg_.Generate(16);
    database_[ticket.identity] = StoredPskState{
        Bytes(resumption_master.begin(), resumption_master.end()),
        ticket.ticket_nonce, now};
  }
  return ticket;
}

std::optional<Tls13Server::StoredPskState> Tls13Server::OpenIdentity(
    ByteView identity, SimTime now) {
  if (config_.identity_kind == IdentityKind::kSelfEncrypted) {
    for (const tls::Stek* stek : steks_.AcceptableSteks(now)) {
      const auto opened = OpenPskState(*stek, identity);
      if (opened) {
        return StoredPskState{opened->resumption_master,
                              opened->ticket_nonce, opened->issued};
      }
    }
    return std::nullopt;
  }
  const auto it = database_.find(Bytes(identity.begin(), identity.end()));
  if (it == database_.end()) return std::nullopt;
  return it->second;
}

ResumptionOutcome Tls13Server::Resume(const Tls13Ticket& ticket,
                                      PskMode wanted_mode,
                                      ByteView client_hello_hash,
                                      ByteView client_kex_public,
                                      ByteView early_data_record, SimTime now,
                                      crypto::Drbg& client_hint_unused) {
  (void)client_hint_unused;
  ResumptionOutcome outcome;
  const auto state = OpenIdentity(ticket.identity, now);
  if (!state) return outcome;
  // Lifetime enforcement (the 7-day window §8.1 warns about).
  if (state->issued + static_cast<SimTime>(ticket.lifetime) <= now) {
    return outcome;
  }
  const Bytes psk = DerivePsk(state->resumption_master, state->ticket_nonce);

  // 0-RTT is keyed from the PSK alone, before any DH happens.
  if (!early_data_record.empty() && config_.accept_early_data) {
    const Bytes early_secret = DeriveEarlySecret(psk);
    const Bytes early_traffic =
        DeriveClientEarlyTrafficSecret(early_secret, client_hello_hash);
    outcome.early_data_plaintext =
        UnprotectEarlyData(early_traffic, early_data_record);
  }

  Bytes dhe_shared;
  if (wanted_mode == PskMode::kPskDheKe && !client_kex_public.empty()) {
    const auto& group = crypto::GetKexGroup(config_.dhe_group);
    last_kex_ = group.GenerateKeyPair(drbg_);
    const auto shared =
        group.SharedSecret(last_kex_.private_key, client_kex_public);
    if (!shared) return outcome;
    dhe_shared = *shared;
    outcome.mode = PskMode::kPskDheKe;
    outcome.server_kex_public = last_kex_.public_value;
  } else {
    if (!config_.allow_psk_ke) return outcome;
    outcome.mode = PskMode::kPskKe;
  }
  outcome.traffic_secret =
      DeriveResumedTrafficSecret(psk, dhe_shared, client_hello_hash);
  outcome.accepted = true;
  return outcome;
}

}  // namespace tlsharm::tls13
