// TLS 1.3 pre-shared-key resumption (paper §2.4, draft-ietf-tls-tls13-15).
//
// TLS 1.3 nominally obsoletes session IDs and tickets, but both survive as
// PSKs: the server's NewSessionTicket carries an identity that is either a
// database lookup key (session-cache-like) or a self-encrypted state blob
// (ticket/STEK-like). The paper's closing argument (§8.1) is that draft 15's
// 7-day PSK lifetime recreates exactly the vulnerability windows measured
// for TLS 1.2 — this module exists to make that analysis executable.
//
// Three data paths, with distinct exposure:
//   psk_ke      — resumption keys derive from the PSK alone; a later PSK
//                 compromise (e.g. STEK theft for self-encrypted identities)
//                 decrypts the whole resumed connection.
//   psk_dhe_ke  — a fresh (EC)DHE exchange mixes into the schedule; the
//                 resumed connection's bulk data stays safe even if the PSK
//                 later leaks...
//   0-RTT       — ...but early data is keyed from the PSK alone in BOTH
//                 modes, so it inherits the full PSK window regardless.
//
// The key schedule follows RFC 8446/draft-15 shape with HMAC-SHA-256:
//   early_secret        = HKDF-Extract(0, PSK)
//   client_early_secret = Derive-Secret(early_secret, "c e traffic", CH)
//   handshake_secret    = HKDF-Extract(Derive-Secret(early_secret,
//                         "derived", ""), (EC)DHE or 0)
//   master/resumption   = further Derive-Secret steps.
#pragma once

#include <map>
#include <optional>

#include "crypto/drbg.h"
#include "crypto/kex.h"
#include "server/stek_manager.h"
#include "tls/keys.h"
#include "util/bytes.h"
#include "util/sim_clock.h"

namespace tlsharm::tls13 {

enum class PskMode : std::uint8_t {
  kPskKe,     // PSK-only resumption
  kPskDheKe,  // PSK + fresh (EC)DHE
};

enum class IdentityKind : std::uint8_t {
  kDatabaseLookup,  // server keeps state (session-cache analogue)
  kSelfEncrypted,   // state sealed under a STEK (ticket analogue)
};

// --- key schedule -----------------------------------------------------------
Bytes DeriveResumptionMasterSecret(ByteView master_secret,
                                   ByteView transcript_hash);
// PSK = HKDF-Expand-Label(res_master, "resumption", ticket_nonce, 32).
Bytes DerivePsk(ByteView resumption_master, ByteView ticket_nonce);
Bytes DeriveEarlySecret(ByteView psk);
Bytes DeriveClientEarlyTrafficSecret(ByteView early_secret,
                                     ByteView client_hello_hash);
// Application traffic secret of the resumed connection; `dhe_shared` is
// empty for psk_ke.
Bytes DeriveResumedTrafficSecret(ByteView psk, ByteView dhe_shared,
                                 ByteView transcript_hash);

// --- NewSessionTicket (1.3) --------------------------------------------------
struct Tls13Ticket {
  Bytes identity;              // lookup key or sealed state
  Bytes ticket_nonce;          // 8 bytes
  std::uint32_t lifetime = 0;  // seconds; draft-15 caps at 7 days
  SimTime issued = 0;
};

inline constexpr std::uint32_t kDraft15MaxLifetime = 7 * 24 * 3600;

// --- a minimal 1.3 resumption server ------------------------------------------
struct Tls13ServerConfig {
  IdentityKind identity_kind = IdentityKind::kSelfEncrypted;
  std::uint32_t psk_lifetime = kDraft15MaxLifetime;
  bool allow_psk_ke = true;    // servers SHOULD prefer psk_dhe_ke
  bool accept_early_data = true;
  crypto::NamedGroup dhe_group = crypto::NamedGroup::kSimEc61;
  server::StekPolicy stek;     // rotation of the identity-sealing key
};

struct ResumptionOutcome {
  bool accepted = false;
  PskMode mode = PskMode::kPskDheKe;
  Bytes server_kex_public;     // psk_dhe_ke only
  Bytes traffic_secret;        // server-side application traffic secret
  std::optional<Bytes> early_data_plaintext;  // decrypted 0-RTT, if sent
};

class Tls13Server {
 public:
  Tls13Server(Tls13ServerConfig config, ByteView seed);

  // Completes an initial (full) handshake abstractly: the caller supplies
  // the agreed master secret and transcript; the server returns a ticket.
  Tls13Ticket IssueTicket(ByteView resumption_master, SimTime now);

  // Client offers the ticket back. `client_kex_public` enables psk_dhe_ke;
  // `early_data_record` is optional 0-RTT protected under the early secret.
  ResumptionOutcome Resume(const Tls13Ticket& ticket, PskMode wanted_mode,
                           ByteView client_hello_hash,
                           ByteView client_kex_public,
                           ByteView early_data_record, SimTime now,
                           crypto::Drbg& client_hint_unused);

  // The attack surface: the sealing key (self-encrypted identities) at a
  // point in time, and the lookup database (database identities).
  const tls::Stek& StealSealingKey(SimTime now) {
    return steks_.StealCurrentKey(now);
  }

 private:
  struct StoredPskState {
    Bytes resumption_master;
    Bytes ticket_nonce;
    SimTime issued = 0;
  };

  std::optional<StoredPskState> OpenIdentity(ByteView identity, SimTime now);

  Tls13ServerConfig config_;
  crypto::Drbg drbg_;
  server::StekManager steks_;
  std::map<Bytes, StoredPskState> database_;
  crypto::KexKeyPair last_kex_;  // exposed via outcome for the client side
};

// --- helpers shared with the attack model -------------------------------------
// Seals/opens the PSK state for self-encrypted identities (RFC 5077-style
// under the hood — that is the point).
Bytes SealPskState(const tls::Stek& stek, ByteView resumption_master,
                   ByteView nonce, SimTime issued, crypto::Drbg& drbg);
struct OpenedPskState {
  Bytes resumption_master;
  Bytes ticket_nonce;
  SimTime issued;
};
std::optional<OpenedPskState> OpenPskState(const tls::Stek& stek,
                                           ByteView identity);

// 0-RTT early data protection: seq 0 record under the early traffic secret.
Bytes ProtectEarlyData(ByteView early_traffic_secret, ByteView plaintext,
                       crypto::Drbg& drbg);
std::optional<Bytes> UnprotectEarlyData(ByteView early_traffic_secret,
                                        ByteView record);

}  // namespace tlsharm::tls13
