// Crash-safe scan campaigns: the orchestration layer that ties the sharded
// scan engine, the text store, the columnar warehouse, and the run journal
// (scanner/runlog.h) into a restartable multi-day study.
//
// A campaign directory looks like:
//
//   RUNLOG             write-ahead journal: config digest + per-day
//                      started/committed records with artifact digests
//   store.txt          line-based observation store (TextStoreFile)
//   warehouse/         columnar warehouse + per-day fold checkpoints
//   state-<day>.bin    campaign state at the last committed day: the scan
//                      aggregates, the loss ledger, and the cumulative
//                      metrics snapshot ("TLRS" | version | body | CRC-32)
//   metrics.json       cumulative scan-metrics snapshot, one line
//
// Commit protocol per scanned day (all on the engine's merge thread):
//   1. journal day-started            (before any probe)
//   2. scan the day; store + warehouse EndDay make its data durable
//   3. fold checkpoint, state-<day>.bin, metrics.json written durably
//   4. journal day-committed with every artifact's size/CRC
//   5. previous day's state file deleted
// A fail-stop crash between any two steps loses at most the in-flight
// day. RunCampaign with resume=true reloads the journal, verifies the
// config digest, restores the last committed state, truncates the store's
// uncommitted tail, reconciles the warehouse (dropping the partial day,
// sweeping temp files and stale checkpoints), and rescans only the
// remaining days — finishing with results and on-disk artifacts
// byte-identical to an uninterrupted run at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/metrics.h"
#include "scanner/scan_engine.h"
#include "warehouse/warehouse.h"

namespace tlsharm::campaign {

struct CampaignSpec {
  std::string dir;        // campaign directory (created if missing)
  int days = 7;           // study length in virtual days
  std::uint64_t seed = 1; // scan seed (prober derivations)
  // Worker threads for the scan engine. Free to differ between the
  // original run and a resume — it never reaches the config digest.
  int threads = 1;
  scanner::ScanRobustness robustness;
  const scanner::Blacklist* blacklist = nullptr;
  // Identity of the simulated world the caller built `net` from
  // (population spec, world seed, fault scale ...), folded into the config
  // digest so a journal can never resume against a different Internet.
  std::uint64_t world_digest = 0;
  // false: start fresh, resetting any previous campaign in `dir`.
  // true: resume from the journal if one exists (fresh start otherwise).
  bool resume = false;
  // Optional adversary recorder: when true, every probe connection is
  // tapped (attack::PassiveCapture) and each committed day adds one
  // columnar capture segment under dir/capture (warehouse/capture.h).
  // Deliberately OUTSIDE the config digest — recording never changes an
  // observation, so a study may be re-run with the tape on or off. The
  // tape reconciles itself on resume via its own manifest: segments past
  // the journal's last committed day are dropped before appends continue.
  // Enabling it mid-campaign (resume of a tapeless run) starts the tape at
  // the resume day.
  bool record_captures = false;
  // Optional live registry: receives the campaign's scan metrics plus the
  // end-of-study fleet sweep (obs/fleet.h). The durable metrics.json
  // deliberately excludes the fleet sweep — live-object totals are not
  // attributable to committed days, so including them would break the
  // resumed-equals-uninterrupted guarantee.
  obs::MetricsRegistry* metrics = nullptr;
  // Optional per-day progress heartbeat, forwarded verbatim to the scan
  // engine (scanner::ScanProgress semantics: merge thread, informational
  // only, no effect on any durable artifact).
  std::function<void(const scanner::ScanProgress&)> progress;
};

// What recovery had to repair. Kept OUT of the campaign's durable metrics
// (a resumed run would otherwise differ from the crash-free golden run);
// surface it via AddRecoveryMetrics into a separate registry.
struct RecoveryStats {
  bool resumed = false;               // a journal was loaded
  int days_replayed = 0;              // committed days restored, not rescanned
  std::uint64_t store_tail_truncated = 0;  // uncommitted store bytes cut
  std::uint64_t tmp_files_removed = 0;
  std::uint64_t stale_segments_removed = 0;
  std::uint64_t stale_checkpoints_removed = 0;
  std::uint64_t stale_states_removed = 0;
};

struct CampaignResult {
  scanner::DailyScanResult scan;
  // The durable cumulative snapshot at the last committed day (the bytes
  // of metrics.json, without trailing newline); "" for a zero-day study.
  std::string metrics_json;
  RecoveryStats recovery;
  int first_scanned_day = 0;   // 0 fresh; k+1 when days 0..k were restored
  std::uint64_t barriers_passed = 0;  // durability barriers this process hit
};

// The campaign's identity: days, seed, robustness knobs, world digest —
// everything that shapes observations, and nothing (threads, telemetry)
// that does not.
std::uint64_t CampaignConfigDigest(const CampaignSpec& spec);

// Runs (or resumes) the campaign. False + `error` on I/O failure, journal
// mismatch, or unrecoverable on-disk state; the journal then still
// describes the last consistent prefix, so a fixed-up rerun can resume.
bool RunCampaign(simnet::Internet& net, const CampaignSpec& spec,
                 CampaignResult* out, std::string* error);

// Renders recovery counters as campaign.recovery.* metrics.
void AddRecoveryMetrics(const RecoveryStats& stats,
                        obs::MetricsRegistry& registry);

// Campaign-directory file names (shared with tests and tooling).
inline constexpr char kRunLogName[] = "RUNLOG";
inline constexpr char kStoreName[] = "store.txt";
inline constexpr char kWarehouseDirName[] = "warehouse";
inline constexpr char kCaptureTapeDirName[] = "capture";
inline constexpr char kMetricsName[] = "metrics.json";
std::string StateFileName(int day);

}  // namespace tlsharm::campaign
