#include "campaign/campaign.h"

#include "obs/prof.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "scanner/runlog.h"
#include "util/crc32.h"
#include "util/durable.h"
#include "warehouse/capture.h"

namespace tlsharm::campaign {
namespace {
// Performance-plane sites for the per-day commit barrier (obs/prof.h).
// "campaign.commit.day" wraps the whole OnDayCommitted critical section so
// bench_recovery can cross-check the prof plane against its own
// commit_ms_per_day measurement.
const tlsharm::obs::ProfSite kProfCommitDay("campaign.commit.day");
const tlsharm::obs::ProfSite kProfCheckpoint("campaign.checkpoint");
const tlsharm::obs::ProfSite kProfStateWrite("campaign.state.write");
const tlsharm::obs::ProfSite kProfJournalAppend("campaign.journal.append");
}  // namespace
namespace {

namespace fs = std::filesystem;

constexpr char kStateMagic[4] = {'T', 'L', 'R', 'S'};
constexpr std::uint8_t kStateVersion = 1;

std::uint64_t Fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

ByteView AsBytes(const std::string& s) {
  return ByteView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

bool ReadFileBytes(const std::string& path, Bytes* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream content;
  content << in.rdbuf();
  const std::string data = content.str();
  out->assign(data.begin(), data.end());
  return true;
}

// --- campaign state file ("TLRS" | version | body | CRC-32) ---------------

Bytes EncodeState(int day, const scanner::ScanAggregates& aggregates,
                  const std::vector<scanner::DayLoss>& loss,
                  const std::string& metrics_json) {
  Bytes out;
  out.insert(out.end(), kStateMagic, kStateMagic + 4);
  out.push_back(kStateVersion);
  AppendVarint(out, static_cast<std::uint64_t>(day));
  aggregates.EncodeState(out);
  AppendVarint(out, loss.size());
  for (const scanner::DayLoss& d : loss) {
    AppendVarint(out, d.scheduled);
    AppendVarint(out, d.recovered);
    AppendVarint(out, d.lost);
    for (const std::size_t n : d.lost_by_class) AppendVarint(out, n);
  }
  AppendVarint(out, metrics_json.size());
  Append(out, AsBytes(metrics_json));
  const std::uint32_t crc = Crc32(out);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(crc >> shift));
  }
  return out;
}

bool DecodeState(ByteView bytes, int expected_day,
                 scanner::ScanResumeState* out, std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (bytes.size() < 9) return fail("state file truncated");
  if (!std::equal(kStateMagic, kStateMagic + 4, bytes.begin())) {
    return fail("bad state magic");
  }
  const std::size_t body = bytes.size() - 4;
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < 4; ++i) stored = (stored << 8) | bytes[body + i];
  if (Crc32(ByteView(bytes.data(), body)) != stored) {
    return fail("state checksum mismatch");
  }
  if (bytes[4] != kStateVersion) return fail("unsupported state version");
  const ByteView view(bytes.data(), body);
  std::size_t off = 5;
  std::uint64_t day = 0;
  if (!ReadVarint(view, off, day) ||
      day != static_cast<std::uint64_t>(expected_day)) {
    return fail("state day disagrees with the journal");
  }
  scanner::ScanResumeState state;
  if (!state.aggregates.DecodeState(view, off)) {
    return fail("malformed aggregate state");
  }
  if (state.aggregates.NextDay() != expected_day + 1) {
    return fail("aggregate state does not cover the committed days");
  }
  std::uint64_t loss_count = 0;
  if (!ReadVarint(view, off, loss_count) ||
      loss_count != static_cast<std::uint64_t>(expected_day) + 1) {
    return fail("loss ledger does not cover the committed days");
  }
  state.loss.resize(static_cast<std::size_t>(loss_count));
  for (scanner::DayLoss& d : state.loss) {
    std::uint64_t scheduled = 0, recovered = 0, lost = 0;
    if (!ReadVarint(view, off, scheduled) ||
        !ReadVarint(view, off, recovered) || !ReadVarint(view, off, lost)) {
      return fail("malformed loss ledger");
    }
    d.scheduled = static_cast<std::size_t>(scheduled);
    d.recovered = static_cast<std::size_t>(recovered);
    d.lost = static_cast<std::size_t>(lost);
    for (std::size_t& n : d.lost_by_class) {
      std::uint64_t v = 0;
      if (!ReadVarint(view, off, v)) return fail("malformed loss ledger");
      n = static_cast<std::size_t>(v);
    }
  }
  std::uint64_t json_len = 0;
  if (!ReadVarint(view, off, json_len) || view.size() - off != json_len) {
    return fail("malformed metrics snapshot");
  }
  state.metrics_json.assign(reinterpret_cast<const char*>(view.data() + off),
                            static_cast<std::size_t>(json_len));
  *out = std::move(state);
  return true;
}

// --- per-day commit hooks -------------------------------------------------

class CommitDriver : public scanner::CampaignHooks {
 public:
  CommitDriver(std::string dir, std::string warehouse_dir,
               scanner::RunLog* journal, scanner::TextStoreFile* store,
               warehouse::WarehouseWriter* warehouse,
               warehouse::CaptureTapeWriter* tape)
      : dir_(std::move(dir)),
        warehouse_dir_(std::move(warehouse_dir)),
        journal_(journal),
        store_(store),
        warehouse_(warehouse),
        tape_(tape) {}

  bool OnDayStarted(int day) override {
    return journal_->DayStarted(day, &error_);
  }

  bool OnDayCommitted(int day, const scanner::ScanAggregates& aggregates,
                      const std::vector<scanner::DayLoss>& loss,
                      const std::string& metrics_json) override {
    obs::ProfScope commit_span(kProfCommitDay);
    // The engine already ran EndDay on both store backends, so the day's
    // observations are durable; a latched backend error means they are
    // not, and committing would journal a lie.
    if (!store_->Ok()) {
      error_ = store_->Error();
      return false;
    }
    if (!warehouse_->ok()) {
      error_ = warehouse_->error();
      return false;
    }
    // The capture tape commits its day segment at the same engine boundary
    // as the warehouse; a latched tape error likewise vetoes the commit.
    if (tape_ != nullptr && !tape_->ok()) {
      error_ = tape_->error();
      return false;
    }
    {
      obs::ProfScope span(kProfCheckpoint);
      if (!scanner::WriteCheckpoint(warehouse_dir_, day, aggregates,
                                    &error_)) {
        return false;
      }
    }
    const Bytes state = EncodeState(day, aggregates, loss, metrics_json);
    {
      obs::ProfScope span(kProfStateWrite);
      if (!DurableWriteFile(dir_ + "/" + StateFileName(day), state,
                            &error_)) {
        return false;
      }
      const std::string metrics_line = metrics_json + "\n";
      if (!DurableWriteFile(dir_ + "/" + kMetricsName, AsBytes(metrics_line),
                            &error_)) {
        return false;
      }
    }

    scanner::DayDigests digests;
    digests.store_bytes = store_->CommittedBytes();
    digests.store_crc = store_->CommittedCrc();
    digests.warehouse_rows = warehouse_->RowsWritten();
    digests.warehouse_segments = warehouse_->SegmentsWritten();
    digests.manifest_crc = warehouse_->ManifestCrc();
    digests.state_bytes = state.size();
    digests.state_crc = Crc32(state);
    {
      obs::ProfScope span(kProfJournalAppend);
      if (!journal_->DayCommitted(day, digests, &error_)) return false;
    }

    // Only now is the predecessor state dead. Removal is not itself a
    // durability barrier: if it does not survive a crash, the resume sweep
    // deletes the stale file again.
    if (day > 0) {
      std::error_code ec;
      fs::remove(dir_ + "/" + StateFileName(day - 1), ec);
    }
    last_metrics_json_ = metrics_json;
    return true;
  }

  const std::string& Error() const { return error_; }
  const std::string& LastMetricsJson() const { return last_metrics_json_; }

 private:
  std::string dir_;
  std::string warehouse_dir_;
  scanner::RunLog* journal_;
  scanner::TextStoreFile* store_;
  warehouse::WarehouseWriter* warehouse_;
  warehouse::CaptureTapeWriter* tape_;
  std::string error_;
  std::string last_metrics_json_;
};

// Removes campaign-root debris: orphaned `*.tmp` from interrupted commits
// and state files for any day but `keep_day` (-1 keeps none).
void SweepCampaignRoot(const std::string& dir, int keep_day,
                       RecoveryStats* stats) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(entry.path(), ec);
      ++stats->tmp_files_removed;
      continue;
    }
    if (name.rfind("state-", 0) == 0 &&
        name != StateFileName(std::max(keep_day, 0)) &&
        name.size() > 10 && name.compare(name.size() - 4, 4, ".bin") == 0) {
      if (keep_day >= 0 && name == StateFileName(keep_day)) continue;
      fs::remove(entry.path(), ec);
      ++stats->stale_states_removed;
    }
  }
  if (keep_day < 0) {
    fs::remove(dir + "/" + kMetricsName, ec);
  }
}

}  // namespace

std::string StateFileName(int day) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "state-%05d.bin", day);
  return buf;
}

std::uint64_t CampaignConfigDigest(const CampaignSpec& spec) {
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  hash = Fnv1a(hash, 0x544c52ull);  // "TLR" tag
  hash = Fnv1a(hash, static_cast<std::uint64_t>(spec.days));
  hash = Fnv1a(hash, spec.seed);
  hash = Fnv1a(hash, static_cast<std::uint64_t>(
                         spec.robustness.retry.max_attempts));
  hash = Fnv1a(hash, static_cast<std::uint64_t>(
                         spec.robustness.retry.base_backoff));
  hash = Fnv1a(hash, static_cast<std::uint64_t>(
                         spec.robustness.retry.max_backoff));
  hash = Fnv1a(hash, static_cast<std::uint64_t>(
                         spec.robustness.retry.attempt_timeout));
  hash = Fnv1a(hash, static_cast<std::uint64_t>(spec.robustness.retry.budget));
  hash = Fnv1a(hash, spec.robustness.requeue_failures ? 1 : 0);
  hash = Fnv1a(hash, static_cast<std::uint64_t>(
                         spec.robustness.requeue_delay));
  hash = Fnv1a(hash, spec.world_digest);
  return hash;
}

void AddRecoveryMetrics(const RecoveryStats& stats,
                        obs::MetricsRegistry& registry) {
  registry.GetCounter("campaign.recovery.resumed")
      .Add(stats.resumed ? 1 : 0);
  registry.GetCounter("campaign.recovery.days_replayed")
      .Add(static_cast<std::uint64_t>(stats.days_replayed));
  registry.GetCounter("campaign.recovery.store_tail_bytes")
      .Add(stats.store_tail_truncated);
  registry.GetCounter("campaign.recovery.tmp_files_removed")
      .Add(stats.tmp_files_removed);
  registry.GetCounter("campaign.recovery.stale_segments_removed")
      .Add(stats.stale_segments_removed);
  registry.GetCounter("campaign.recovery.stale_checkpoints_removed")
      .Add(stats.stale_checkpoints_removed);
  registry.GetCounter("campaign.recovery.stale_states_removed")
      .Add(stats.stale_states_removed);
}

bool RunCampaign(simnet::Internet& net, const CampaignSpec& spec,
                 CampaignResult* out, std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (spec.days <= 0) return fail("campaign needs at least one day");

  std::error_code ec;
  fs::create_directories(spec.dir, ec);
  if (ec) {
    return fail("cannot create " + spec.dir + ": " + ec.message());
  }
  const std::string runlog_path = spec.dir + "/" + kRunLogName;
  const std::string store_path = spec.dir + "/" + kStoreName;
  const std::string warehouse_dir = spec.dir + "/" + kWarehouseDirName;
  const std::string capture_dir = spec.dir + "/" + kCaptureTapeDirName;
  const std::uint64_t digest = CampaignConfigDigest(spec);

  scanner::RunLog journal;
  scanner::TextStoreFile store;
  std::unique_ptr<warehouse::WarehouseWriter> wh;
  std::unique_ptr<warehouse::CaptureTapeWriter> tape;
  scanner::ScanResumeState resume_state;
  RecoveryStats recovery;
  int start_day = 0;

  // The capture tape is self-journaling (its own MANIFEST); the campaign
  // only decides create vs. resume here and lets the tape reconcile.
  const auto open_tape = [&](int last_committed) -> bool {
    if (!spec.record_captures) {
      // A stale tape from an earlier recorded run of this directory would
      // otherwise masquerade as this study's archive.
      std::error_code tape_ec;
      fs::remove_all(capture_dir, tape_ec);
      return true;
    }
    warehouse::RecoverySweep sweep;
    if (last_committed >= 0 && fs::exists(capture_dir + "/MANIFEST")) {
      tape = warehouse::CaptureTapeWriter::Resume(capture_dir, last_committed,
                                                  &sweep, error);
    } else {
      tape = warehouse::CaptureTapeWriter::Create(capture_dir, error, &sweep);
    }
    recovery.tmp_files_removed += sweep.tmp_files_removed;
    recovery.stale_segments_removed += sweep.stale_segments_removed;
    return tape != nullptr;
  };

  scanner::RunLogContents contents;
  bool have_journal = false;
  if (spec.resume && fs::exists(runlog_path, ec)) {
    std::string journal_error;
    if (!scanner::RunLog::Load(runlog_path, &contents, &journal_error)) {
      // A journal that exists but cannot be decoded means the campaign's
      // history is gone; silently restarting would overwrite data the
      // operator may want to inspect.
      return fail(journal_error);
    }
    have_journal = true;
  }

  if (have_journal) {
    recovery.resumed = true;
    if (contents.config_digest != digest) {
      return fail(runlog_path +
                  ": journal belongs to a different campaign configuration");
    }
    if (contents.days != spec.days) {
      return fail(runlog_path + ": journal records a " +
                  std::to_string(contents.days) + "-day study, spec says " +
                  std::to_string(spec.days));
    }
    const int last = contents.LastCommitted();
    if (last >= 0) {
      const scanner::DayDigests& committed = contents.committed.back().digests;
      // State first: it proves the committed prefix is reconstructible
      // before anything on disk gets truncated or deleted.
      Bytes state_bytes;
      const std::string state_path = spec.dir + "/" + StateFileName(last);
      if (!ReadFileBytes(state_path, &state_bytes, error)) return false;
      if (state_bytes.size() != committed.state_bytes ||
          Crc32(state_bytes) != committed.state_crc) {
        return fail(state_path + ": does not match the journal's digest");
      }
      std::string state_error;
      if (!DecodeState(state_bytes, last, &resume_state, &state_error)) {
        return fail(state_path + ": " + state_error);
      }
      if (!store.Resume(store_path, committed.store_bytes,
                        committed.store_crc, &recovery.store_tail_truncated,
                        error)) {
        return false;
      }
      warehouse::RecoverySweep sweep;
      wh = warehouse::WarehouseWriter::Resume(warehouse_dir, last, &sweep,
                                              error);
      if (wh == nullptr) return false;
      recovery.tmp_files_removed += sweep.tmp_files_removed;
      recovery.stale_segments_removed += sweep.stale_segments_removed;
      recovery.stale_checkpoints_removed += sweep.stale_checkpoints_removed;
      if (wh->RowsWritten() != committed.warehouse_rows ||
          wh->SegmentsWritten() != committed.warehouse_segments ||
          wh->ManifestCrc() != committed.manifest_crc) {
        return fail(warehouse_dir +
                    ": reconciled warehouse does not match the journal");
      }
      if (!open_tape(last)) return false;
      SweepCampaignRoot(spec.dir, last, &recovery);
      if (!journal.Reopen(runlog_path, contents, error)) return false;
      start_day = last + 1;
      recovery.days_replayed = last + 1;
    } else {
      // Journal exists but no day ever committed: every artifact is
      // uncommitted debris — start the study over under the same journal.
      SweepCampaignRoot(spec.dir, -1, &recovery);
      if (!journal.Reopen(runlog_path, contents, error)) return false;
      if (!store.Create(store_path, error)) return false;
      warehouse::RecoverySweep sweep;
      wh = warehouse::WarehouseWriter::Create(warehouse_dir, error, &sweep);
      if (wh == nullptr) return false;
      recovery.tmp_files_removed += sweep.tmp_files_removed;
      if (!open_tape(-1)) return false;
    }
  } else {
    SweepCampaignRoot(spec.dir, -1, &recovery);
    if (!journal.Start(runlog_path, digest, spec.days, error)) return false;
    if (!store.Create(store_path, error)) return false;
    warehouse::RecoverySweep sweep;
    wh = warehouse::WarehouseWriter::Create(warehouse_dir, error, &sweep);
    if (wh == nullptr) return false;
    recovery.tmp_files_removed += sweep.tmp_files_removed;
    if (!open_tape(-1)) return false;
  }

  CommitDriver driver(spec.dir, warehouse_dir, &journal, &store, wh.get(),
                      tape.get());
  scanner::MultiStoreWriter backends;
  backends.Add(&store);
  backends.Add(wh.get());

  scanner::ScanEngineOptions engine;
  engine.threads = spec.threads;
  engine.robustness = spec.robustness;
  engine.blacklist = spec.blacklist;
  engine.store = &backends;
  engine.capture = tape.get();
  engine.metrics = spec.metrics;
  engine.start_day = start_day;
  engine.resume = start_day > 0 ? &resume_state : nullptr;
  engine.hooks = &driver;
  engine.progress = spec.progress;

  CampaignResult result;
  result.scan = scanner::RunShardedDailyScans(net, spec.days, spec.seed,
                                              engine);
  if (!driver.Error().empty()) return fail(driver.Error());
  if (!store.Ok()) return fail(store.Error());
  if (!wh->ok()) return fail(wh->error());
  if (tape != nullptr && !tape->ok()) return fail(tape->error());

  result.metrics_json = start_day >= spec.days
                            ? resume_state.metrics_json
                            : driver.LastMetricsJson();
  result.recovery = recovery;
  result.first_scanned_day = start_day;
  result.barriers_passed = CrashPointsPassed();
  *out = std::move(result);
  return true;
}

}  // namespace tlsharm::campaign
