// The compromise model: which fleet secret falls into the adversary's
// hands, from whom, and at what virtual time.
//
// A CompromiseSpec names one of the paper's three vectors (§6.1–§6.3), an
// operator profile (the fleet whose secret is stolen), and a virtual
// compromise time T. TakeSnapshot then steals the corresponding live
// secrets from the simulated Internet — the issuing STEKs, the session
// cache contents still alive at T, or the reused (EC)DHE pairs in use at
// T — deduplicating shared state so a fleet-wide key is stolen once.
//
// Accuracy caveats (why the harm-curve sweep in replay.h derives timelines
// from the capture archive instead of snapshotting every T):
//   * StekManager prunes retired epochs one day behind the newest query
//     time, so StealCurrentKey(T) is only faithful for T within a day of
//     the fleet's watermark (in practice: at or near the end of the scan).
//   * A SessionCache dump reflects evictions and restart flushes that
//     happened up to the moment of the steal, not the historical state.
//   * Reused KEX pairs are derived by epoch, so those ARE exact at any T.
// Snapshots are therefore the ground-truth cross-check at end-of-study T
// and the `explain` tool's evidence, while curves come from the archive.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "attack/decrypt.h"
#include "attack/record.h"
#include "simnet/internet.h"

namespace tlsharm::adversary {

enum class CompromiseVector : std::uint8_t {
  kStek = 0,          // session-ticket encryption key theft (§6.1)
  kSessionCache = 1,  // server session-cache dump (§6.2)
  kDh = 2,            // reused (EC)DHE private value theft (§6.3)
};
inline constexpr int kCompromiseVectorCount = 3;

const char* ToString(CompromiseVector vector);

struct CompromiseSpec {
  CompromiseVector vector = CompromiseVector::kStek;
  // Operator profile whose fleet is compromised (simnet operator_name);
  // "" compromises every operator at once (a global passive adversary).
  std::string profile;
  // Virtual compromise time T.
  SimTime at = 0;
};

struct StolenStek {
  tls::TicketCodecKind codec = tls::TicketCodecKind::kRfc5077;
  tls::Stek stek;
};

struct StolenKexPair {
  crypto::NamedGroup group = crypto::NamedGroup::kSimEc61;
  Bytes private_key;
  Bytes public_value;
};

// Everything one TakeSnapshot stole. Only the member matching spec.vector
// is populated.
struct CompromisedSecrets {
  CompromiseSpec spec;
  std::vector<StolenStek> steks;
  std::map<Bytes, server::CachedSession> cache_dump;  // live entries at T
  std::vector<StolenKexPair> kex_pairs;
};

// Steals the spec'd secret from every terminator serving the profile's
// domains, deduplicating shared managers/caches (a fleet-shared key is one
// theft). Non-const net: advancing a StekManager to T applies scheduled
// rotations, exactly as a connection at T would.
CompromisedSecrets TakeSnapshot(simnet::Internet& net,
                                const CompromiseSpec& spec);

// One archived connection replayed against the stolen secrets with the
// real decryptors (attack/decrypt.h) over ReconstructCapture.
struct ReplayOutcome {
  bool ok = false;
  attack::DecryptFailureClass failure =
      attack::DecryptFailureClass::kCaptureInvalid;
  Bytes master_secret;  // set when ok
};

ReplayOutcome ReplaySnapshot(const CompromisedSecrets& secrets,
                             const attack::CaptureRecord& record);

}  // namespace tlsharm::adversary
