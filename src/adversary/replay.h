// The replay engine: folds a capture archive against the compromise model
// and sweeps harm curves — decryptable-traffic fraction as a function of
// the compromise time T — in one pass over the archive per profile/vector.
//
// The engine never touches live secrets. It derives each fleet's secret
// *timeline* from the archive itself: the STEK fingerprint a terminator's
// tickets carried at each capture time, the reused (EC)DHE public value it
// served, and the session-cache liveness window implied by the terminator's
// configured lifetime and restart schedule. A connection is decryptable at
// compromise time T exactly when the secret stolen at T matches the one
// that protected it:
//
//   stek  — the connection's ticket fingerprint equals some fleet
//           terminator's issuing-key fingerprint at T (tickets sealed
//           under the stolen key open forward AND backward in time);
//   dh    — the connection's server KEX value equals the reused value a
//           terminator holds at T (only endpoints whose config reuses the
//           group qualify — a fresh-per-handshake value is never "held");
//   session_cache — the dump at T contains the connection's master secret:
//           capture time <= T < min(capture + lifetime, next restart).
//
// Survivors are classed with attack::DecryptFailureClass so curves report
// WHY traffic survived, not just how much. Candidate T values are the
// archive's distinct capture times; at times where every fleet endpoint
// was captured (the daily main pass), the sweep agrees exactly with a
// ground-truth TakeSnapshot + ReplaySnapshot pass — the engine's selftest
// cross-checks this.
//
// Everything here is deterministic: rows fold in canonical archive order,
// all grouping containers are ordered, and the JSONL rendering is integer
// only — byte-identical at any thread count and identical whether records
// come from the live CaptureBufferSink or a reloaded CaptureTape.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "adversary/compromise.h"
#include "attack/record.h"
#include "simnet/internet.h"

namespace tlsharm::adversary {

// One point of a harm curve: the compromise at time `t` against the whole
// archive (past and future connections alike — record now, decrypt later).
struct HarmPoint {
  SimTime t = 0;
  // Denominators: every archived connection of the profile.
  std::uint64_t connections = 0;
  std::uint64_t wire_bytes = 0;
  // What the compromise at `t` opens.
  std::uint64_t decryptable = 0;
  std::uint64_t decryptable_bytes = 0;
  std::uint64_t decryptable_domains = 0;  // distinct domains affected
  SimTime oldest_decrypted = -1;  // earliest decryptable capture; -1 = none
  // Why the rest survived, by failure class (kNone slot stays 0).
  std::array<std::uint64_t, attack::kDecryptFailureClassCount> survivors{};

  bool operator==(const HarmPoint&) const = default;
};

struct HarmCurve {
  std::string profile;  // operator_name
  CompromiseVector vector = CompromiseVector::kStek;
  std::vector<HarmPoint> points;  // ascending t (the candidate times)

  bool operator==(const HarmCurve&) const = default;
};

class HarmEngine {
 public:
  // `net` supplies world metadata only (operator names, ticket codecs,
  // cache configs, restart schedules) — never a secret. Non-const because
  // Internet::Terminator is non-const; nothing is mutated.
  explicit HarmEngine(simnet::Internet& net);

  // Folds one archived record. Call in canonical archive order (the order
  // CaptureTape::ForEachCapture and CaptureBufferSink preserve).
  void Ingest(int day, const attack::CaptureRecord& record);

  // Finalizes timelines and candidate times. Call once, after the last
  // Ingest and before any sweep.
  void Seal();

  // Distinct capture times, ascending — the sweep's candidate T values.
  const std::vector<SimTime>& CandidateTimes() const { return times_; }
  std::uint64_t RowCount() const { return static_cast<std::uint64_t>(rows_.size()); }
  // Observed operator profiles, sorted.
  std::vector<std::string> Profiles() const;

  // All curves: profiles sorted, vectors in enum order, points ascending.
  std::vector<HarmCurve> Sweep() const;
  // One curve; unknown profile yields an empty-point curve.
  HarmCurve SweepProfileVector(const std::string& profile,
                               CompromiseVector vector) const;

 private:
  struct EndpointMeta {
    tls::TicketCodecKind codec = tls::TicketCodecKind::kRfc5077;
    bool cacheable = false;  // cache enabled and not the issue-only quirk
    SimTime cache_lifetime = 0;
    simnet::Internet::RestartSchedule restarts;
    bool dhe_reuse = false;
    bool ecdhe_reuse = false;
    std::uint16_t dhe_group = 0;
    std::uint16_t ecdhe_group = 0;
  };

  struct Row {
    std::uint32_t domain = 0;
    SimTime time = 0;
    std::uint32_t endpoint = 0;
    std::uint32_t profile = 0;
    bool valid = false;
    std::uint64_t wire_bytes = 0;
    std::int32_t stek_fp = -1;  // interned ticket fingerprint; -1 = none
    std::int32_t kex_fp = -1;   // interned (group, value); -1 = none
    std::uint16_t kex_group = 0;
    bool kex_reused = false;    // endpoint reuses the row's KEX group
    bool has_session_id = false;
    bool cacheable = false;
    SimTime cache_end = 0;  // entry evicted/flushed at this time
  };

  const EndpointMeta& MetaOf(std::uint32_t endpoint);
  std::uint32_t ProfileOf(std::uint32_t domain);
  std::int32_t Intern(std::map<Bytes, std::int32_t>& table, Bytes key);

  HarmCurve SweepStek(std::uint32_t pid, HarmCurve curve) const;
  HarmCurve SweepDh(std::uint32_t pid, HarmCurve curve) const;
  HarmCurve SweepCache(std::uint32_t pid, HarmCurve curve) const;

  simnet::Internet& net_;
  bool sealed_ = false;

  std::map<std::string, std::uint32_t> profile_ids_;
  std::vector<std::string> profile_names_;  // by id
  std::map<std::uint32_t, std::uint32_t> domain_profile_;  // memoized
  std::map<std::uint32_t, EndpointMeta> endpoint_meta_;    // memoized

  std::map<Bytes, std::int32_t> stek_fps_;
  std::map<Bytes, std::int32_t> kex_fps_;

  std::vector<Row> rows_;                    // canonical archive order
  std::vector<SimTime> times_;               // sealed: sorted distinct
  std::vector<std::vector<std::uint32_t>> profile_rows_;  // row idx by pid

  // Secret timelines, sealed: sorted (time, fp), deduplicated.
  using Timeline = std::vector<std::pair<SimTime, std::int32_t>>;
  std::map<std::uint32_t, Timeline> stek_timelines_;  // by endpoint
  // by endpoint<<16 | group — reuse-enabled (endpoint, group) pairs only.
  std::map<std::uint64_t, Timeline> kex_timelines_;
};

// Canonical JSONL: one line per (profile, vector, t), integer fields only
// (decryptable_ppm is the fixed-point fraction), survivors as a nested
// object with only the non-zero classes.
std::string RenderHarmCurvesJsonl(const std::vector<HarmCurve>& curves);

}  // namespace tlsharm::adversary
