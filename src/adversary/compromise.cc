#include "adversary/compromise.h"

#include <set>
#include <utility>

namespace tlsharm::adversary {
namespace {

// Terminators serving the profile's domains, ascending id (deterministic
// theft order). "" matches every operator.
std::vector<simnet::TerminatorId> FleetOf(const simnet::Internet& net,
                                          const std::string& profile) {
  std::set<simnet::TerminatorId> fleet;
  const std::size_t domains = net.DomainCount();
  for (std::size_t d = 0; d < domains; ++d) {
    const auto id = static_cast<simnet::DomainId>(d);
    if (!profile.empty() && net.DomainOperator(id) != profile) continue;
    const std::size_t endpoints = net.DomainEndpointCount(id);
    for (std::size_t e = 0; e < endpoints; ++e) {
      fleet.insert(net.DomainEndpoint(id, e));
    }
  }
  return {fleet.begin(), fleet.end()};
}

}  // namespace

const char* ToString(CompromiseVector vector) {
  switch (vector) {
    case CompromiseVector::kStek:
      return "stek";
    case CompromiseVector::kSessionCache:
      return "session_cache";
    case CompromiseVector::kDh:
      return "dh";
  }
  return "?";
}

CompromisedSecrets TakeSnapshot(simnet::Internet& net,
                                const CompromiseSpec& spec) {
  CompromisedSecrets out;
  out.spec = spec;
  // Shared state is stolen once: terminators that install the same manager
  // object hold the same secret (that sharing IS the service group). The
  // secret stores are resident regardless of fleet mode, so the sweep never
  // materializes a terminator — a million-domain lazy fleet snapshots in
  // bounded memory.
  std::set<const void*> seen;
  std::set<std::pair<const void*, std::uint16_t>> seen_kex;
  for (const simnet::TerminatorId tid : FleetOf(net, spec.profile)) {
    switch (spec.vector) {
      case CompromiseVector::kStek: {
        server::StekManager& steks = net.SteksOf(tid);
        if (!seen.insert(&steks).second) break;
        out.steks.push_back(
            StolenStek{steks.Codec(), steks.StealCurrentKey(spec.at)});
        break;
      }
      case CompromiseVector::kSessionCache: {
        server::SessionCache& cache = net.CacheOf(tid);
        if (!seen.insert(&cache).second) break;
        if (!net.TerminatorConfigOf(tid).session_cache.enabled) break;
        const SimTime lifetime = cache.Lifetime();
        for (const auto& [id, session] : cache.Dump()) {
          // The dump may hold entries the lazy sweep has not evicted yet;
          // an entry is only usable at T while the server would still
          // honour it.
          if (session.created <= spec.at &&
              spec.at < session.created + lifetime) {
            out.cache_dump.emplace(id, session);
          }
        }
        break;
      }
      case CompromiseVector::kDh: {
        const server::ServerConfig& config = net.TerminatorConfigOf(tid);
        const server::KexCache& kex = net.KexOf(tid);
        const std::pair<crypto::NamedGroup, const server::KexReusePolicy*>
            slots[] = {{config.dhe_group, &config.dhe_reuse},
                       {config.ecdhe_group, &config.ecdhe_reuse}};
        for (const auto& [group, policy] : slots) {
          if (!policy->reuse) continue;  // fresh per handshake: nothing kept
          // Dedup per (cache, group): sharers derive the identical pair.
          if (!seen_kex.insert({&kex, static_cast<std::uint16_t>(group)})
                   .second) {
            continue;
          }
          // Reused pairs are epoch-derived, so the drbg is never drawn
          // from on this path; any instance satisfies the signature.
          crypto::Drbg unused(ToBytes("adversary-snapshot"));
          crypto::KexKeyPair pair =
              kex.GetKeyPair(group, *policy, spec.at, unused);
          out.kex_pairs.push_back(StolenKexPair{group,
                                                std::move(pair.private_key),
                                                std::move(pair.public_value)});
        }
        break;
      }
    }
  }
  return out;
}

ReplayOutcome ReplaySnapshot(const CompromisedSecrets& secrets,
                             const attack::CaptureRecord& record) {
  using attack::DecryptFailureClass;
  ReplayOutcome out;
  const attack::ParsedCapture capture = attack::ReconstructCapture(record);
  if (!capture.valid) {
    out.failure = DecryptFailureClass::kCaptureInvalid;
    return out;
  }
  const auto succeed = [&out](attack::DecryptedSession session) {
    out.ok = true;
    out.failure = DecryptFailureClass::kNone;
    out.master_secret = std::move(session.master_secret);
  };
  switch (secrets.spec.vector) {
    case CompromiseVector::kStek: {
      for (const StolenStek& stolen : secrets.steks) {
        attack::DecryptedSession session =
            attack::StekDecryptor(stolen.codec, stolen.stek).Decrypt(capture);
        if (session.ok) {
          succeed(std::move(session));
          return out;
        }
      }
      out.failure = capture.RelevantTicket().empty()
                        ? DecryptFailureClass::kNoTicket
                        : DecryptFailureClass::kWrongStek;
      return out;
    }
    case CompromiseVector::kSessionCache: {
      attack::DecryptedSession session =
          attack::CacheDecryptor(secrets.cache_dump).Decrypt(capture);
      if (session.ok) {
        succeed(std::move(session));
      } else {
        out.failure = session.failure;
      }
      return out;
    }
    case CompromiseVector::kDh: {
      for (const StolenKexPair& stolen : secrets.kex_pairs) {
        attack::DecryptedSession session =
            attack::DhDecryptor(stolen.group, stolen.private_key,
                                stolen.public_value)
                .Decrypt(capture);
        if (session.ok) {
          succeed(std::move(session));
          return out;
        }
      }
      out.failure = capture.server_kex.has_value()
                        ? DecryptFailureClass::kKexMismatch
                        : DecryptFailureClass::kNoKex;
      return out;
    }
  }
  return out;
}

}  // namespace tlsharm::adversary
