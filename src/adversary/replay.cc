#include "adversary/replay.h"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

namespace tlsharm::adversary {
namespace {

constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

// Fingerprint in force at T: the latest observation at or before T.
// -1 = the archive has no knowledge of this secret yet (matches nothing).
std::int32_t TimelineAt(
    const std::vector<std::pair<SimTime, std::int32_t>>& timeline,
    SimTime t) {
  const auto it = std::upper_bound(
      timeline.begin(), timeline.end(),
      std::make_pair(t, std::numeric_limits<std::int32_t>::max()));
  if (it == timeline.begin()) return -1;
  return std::prev(it)->second;
}

std::uint64_t KexTimelineKey(std::uint32_t endpoint, std::uint16_t group) {
  return (static_cast<std::uint64_t>(endpoint) << 16) | group;
}

// Per-fingerprint tally of the connections sealed under one secret.
struct FpGroup {
  std::uint64_t connections = 0;
  std::uint64_t bytes = 0;
  SimTime oldest = kNever;
  std::set<std::uint32_t> domains;
};

void AppendInt(std::string& out, std::uint64_t v) { out += std::to_string(v); }

void AppendSigned(std::string& out, SimTime v) { out += std::to_string(v); }

}  // namespace

HarmEngine::HarmEngine(simnet::Internet& net) : net_(net) {}

const HarmEngine::EndpointMeta& HarmEngine::MetaOf(std::uint32_t endpoint) {
  const auto it = endpoint_meta_.find(endpoint);
  if (it != endpoint_meta_.end()) return it->second;
  const server::ServerConfig& config =
      net_.TerminatorConfigOf(static_cast<simnet::TerminatorId>(endpoint));
  EndpointMeta meta;
  meta.codec = config.tickets.codec;
  meta.cacheable = config.session_cache.enabled &&
                   !config.session_cache.issue_id_without_cache;
  meta.cache_lifetime = config.session_cache.lifetime;
  meta.restarts =
      net_.RestartScheduleOf(static_cast<simnet::TerminatorId>(endpoint));
  meta.dhe_reuse = config.dhe_reuse.reuse;
  meta.ecdhe_reuse = config.ecdhe_reuse.reuse;
  meta.dhe_group = static_cast<std::uint16_t>(config.dhe_group);
  meta.ecdhe_group = static_cast<std::uint16_t>(config.ecdhe_group);
  return endpoint_meta_.emplace(endpoint, meta).first->second;
}

std::uint32_t HarmEngine::ProfileOf(std::uint32_t domain) {
  const auto it = domain_profile_.find(domain);
  if (it != domain_profile_.end()) return it->second;
  const std::string& name =
      net_.DomainOperator(static_cast<simnet::DomainId>(domain));
  const auto [pit, inserted] = profile_ids_.emplace(
      name, static_cast<std::uint32_t>(profile_names_.size()));
  if (inserted) {
    profile_names_.push_back(name);
    profile_rows_.emplace_back();
  }
  return domain_profile_.emplace(domain, pit->second).first->second;
}

std::int32_t HarmEngine::Intern(std::map<Bytes, std::int32_t>& table,
                                Bytes key) {
  const auto [it, inserted] =
      table.emplace(std::move(key), static_cast<std::int32_t>(table.size()));
  return it->second;
}

void HarmEngine::Ingest(int day, const attack::CaptureRecord& record) {
  (void)day;  // times are absolute; day partitioning is a storage concern
  const EndpointMeta& meta = MetaOf(record.endpoint);

  Row row;
  row.domain = record.domain;
  row.time = record.time;
  row.endpoint = record.endpoint;
  row.profile = ProfileOf(record.domain);
  row.valid = record.valid;
  row.wire_bytes = record.wire_bytes;

  if (record.valid && !record.ticket.empty()) {
    const std::optional<Bytes> id =
        tls::GetTicketCodec(meta.codec).ExtractStekId(record.ticket);
    if (id.has_value()) row.stek_fp = Intern(stek_fps_, *id);
  }
  if (record.valid && !record.server_kex.empty()) {
    Bytes key;
    key.reserve(record.server_kex.size() + 2);
    key.push_back(static_cast<std::uint8_t>(record.kex_group >> 8));
    key.push_back(static_cast<std::uint8_t>(record.kex_group & 0xff));
    key.insert(key.end(), record.server_kex.begin(), record.server_kex.end());
    row.kex_fp = Intern(kex_fps_, std::move(key));
    row.kex_group = record.kex_group;
    row.kex_reused =
        (record.kex_group == meta.dhe_group && meta.dhe_reuse) ||
        (record.kex_group == meta.ecdhe_group && meta.ecdhe_reuse);
  }
  row.has_session_id = record.valid && !record.session_id.empty();
  row.cacheable = meta.cacheable;
  if (row.valid && row.has_session_id && row.cacheable) {
    SimTime end = row.time + meta.cache_lifetime;
    if (meta.restarts.every > 0) {
      // First restart strictly after the capture flushes the entry
      // (maintenance due exactly at the capture time was applied before
      // the connection, so the entry survives that one).
      SimTime next = meta.restarts.first;
      if (next <= row.time) {
        const SimTime past = (row.time - meta.restarts.first) /
                             meta.restarts.every;
        next = meta.restarts.first + (past + 1) * meta.restarts.every;
      }
      end = std::min(end, next);
    }
    row.cache_end = end;
  }

  profile_rows_[row.profile].push_back(
      static_cast<std::uint32_t>(rows_.size()));
  times_.push_back(row.time);
  rows_.push_back(row);
}

void HarmEngine::Seal() {
  std::sort(times_.begin(), times_.end());
  times_.erase(std::unique(times_.begin(), times_.end()), times_.end());

  for (const Row& row : rows_) {
    if (!row.valid) continue;
    if (row.stek_fp >= 0) {
      stek_timelines_[row.endpoint].emplace_back(row.time, row.stek_fp);
    }
    if (row.kex_fp >= 0 && row.kex_reused) {
      kex_timelines_[KexTimelineKey(row.endpoint, row.kex_group)]
          .emplace_back(row.time, row.kex_fp);
    }
  }
  const auto finalize = [](Timeline& timeline) {
    std::sort(timeline.begin(), timeline.end());
    timeline.erase(std::unique(timeline.begin(), timeline.end()),
                   timeline.end());
  };
  for (auto& [endpoint, timeline] : stek_timelines_) finalize(timeline);
  for (auto& [key, timeline] : kex_timelines_) finalize(timeline);
  sealed_ = true;
}

std::vector<std::string> HarmEngine::Profiles() const {
  std::vector<std::string> out;
  out.reserve(profile_ids_.size());
  for (const auto& [name, id] : profile_ids_) out.push_back(name);
  return out;
}

std::vector<HarmCurve> HarmEngine::Sweep() const {
  std::vector<HarmCurve> out;
  for (const auto& [name, pid] : profile_ids_) {
    for (int v = 0; v < kCompromiseVectorCount; ++v) {
      out.push_back(
          SweepProfileVector(name, static_cast<CompromiseVector>(v)));
    }
  }
  return out;
}

HarmCurve HarmEngine::SweepProfileVector(const std::string& profile,
                                         CompromiseVector vector) const {
  HarmCurve curve;
  curve.profile = profile;
  curve.vector = vector;
  const auto it = profile_ids_.find(profile);
  if (!sealed_ || it == profile_ids_.end()) return curve;
  switch (vector) {
    case CompromiseVector::kStek:
      return SweepStek(it->second, std::move(curve));
    case CompromiseVector::kSessionCache:
      return SweepCache(it->second, std::move(curve));
    case CompromiseVector::kDh:
      return SweepDh(it->second, std::move(curve));
  }
  return curve;
}

HarmCurve HarmEngine::SweepStek(std::uint32_t pid, HarmCurve curve) const {
  using attack::DecryptFailureClass;
  std::uint64_t total = 0, total_bytes = 0, invalid = 0, no_ticket = 0,
                ticketed = 0;
  std::map<std::int32_t, FpGroup> groups;
  std::set<std::uint32_t> endpoints;
  for (const std::uint32_t idx : profile_rows_[pid]) {
    const Row& row = rows_[idx];
    ++total;
    total_bytes += row.wire_bytes;
    endpoints.insert(row.endpoint);
    if (!row.valid) {
      ++invalid;
      continue;
    }
    if (row.stek_fp < 0) {
      ++no_ticket;
      continue;
    }
    ++ticketed;
    FpGroup& group = groups[row.stek_fp];
    ++group.connections;
    group.bytes += row.wire_bytes;
    group.oldest = std::min(group.oldest, row.time);
    group.domains.insert(row.domain);
  }
  // Fleet timelines: only endpoints this profile's rows touched.
  std::vector<const Timeline*> timelines;
  for (const std::uint32_t endpoint : endpoints) {
    const auto tl = stek_timelines_.find(endpoint);
    if (tl != stek_timelines_.end()) timelines.push_back(&tl->second);
  }
  for (const SimTime t : times_) {
    std::set<std::int32_t> active;
    for (const Timeline* timeline : timelines) {
      const std::int32_t fp = TimelineAt(*timeline, t);
      if (fp >= 0) active.insert(fp);
    }
    HarmPoint point;
    point.t = t;
    point.connections = total;
    point.wire_bytes = total_bytes;
    std::set<std::uint32_t> domains;
    for (const std::int32_t fp : active) {
      const auto group = groups.find(fp);
      if (group == groups.end()) continue;
      point.decryptable += group->second.connections;
      point.decryptable_bytes += group->second.bytes;
      if (group->second.oldest != kNever) {
        point.oldest_decrypted =
            point.oldest_decrypted < 0
                ? group->second.oldest
                : std::min(point.oldest_decrypted, group->second.oldest);
      }
      domains.insert(group->second.domains.begin(),
                     group->second.domains.end());
    }
    point.decryptable_domains = domains.size();
    point.survivors[static_cast<int>(DecryptFailureClass::kCaptureInvalid)] =
        invalid;
    point.survivors[static_cast<int>(DecryptFailureClass::kNoTicket)] =
        no_ticket;
    point.survivors[static_cast<int>(DecryptFailureClass::kWrongStek)] =
        ticketed - point.decryptable;
    curve.points.push_back(point);
  }
  return curve;
}

HarmCurve HarmEngine::SweepDh(std::uint32_t pid, HarmCurve curve) const {
  using attack::DecryptFailureClass;
  std::uint64_t total = 0, total_bytes = 0, invalid = 0, no_kex = 0,
                fresh_kex = 0, reused_kex = 0;
  std::map<std::int32_t, FpGroup> groups;
  std::set<std::uint64_t> timeline_keys;
  for (const std::uint32_t idx : profile_rows_[pid]) {
    const Row& row = rows_[idx];
    ++total;
    total_bytes += row.wire_bytes;
    if (!row.valid) {
      ++invalid;
      continue;
    }
    if (row.kex_fp < 0) {
      ++no_kex;
      continue;
    }
    if (!row.kex_reused) {
      // The server never keeps this value: gone before any compromise.
      ++fresh_kex;
      continue;
    }
    ++reused_kex;
    timeline_keys.insert(KexTimelineKey(row.endpoint, row.kex_group));
    FpGroup& group = groups[row.kex_fp];
    ++group.connections;
    group.bytes += row.wire_bytes;
    group.oldest = std::min(group.oldest, row.time);
    group.domains.insert(row.domain);
  }
  std::vector<const Timeline*> timelines;
  for (const std::uint64_t key : timeline_keys) {
    const auto tl = kex_timelines_.find(key);
    if (tl != kex_timelines_.end()) timelines.push_back(&tl->second);
  }
  for (const SimTime t : times_) {
    std::set<std::int32_t> active;
    for (const Timeline* timeline : timelines) {
      const std::int32_t fp = TimelineAt(*timeline, t);
      if (fp >= 0) active.insert(fp);
    }
    HarmPoint point;
    point.t = t;
    point.connections = total;
    point.wire_bytes = total_bytes;
    std::set<std::uint32_t> domains;
    for (const std::int32_t fp : active) {
      const auto group = groups.find(fp);
      if (group == groups.end()) continue;
      point.decryptable += group->second.connections;
      point.decryptable_bytes += group->second.bytes;
      if (group->second.oldest != kNever) {
        point.oldest_decrypted =
            point.oldest_decrypted < 0
                ? group->second.oldest
                : std::min(point.oldest_decrypted, group->second.oldest);
      }
      domains.insert(group->second.domains.begin(),
                     group->second.domains.end());
    }
    point.decryptable_domains = domains.size();
    point.survivors[static_cast<int>(DecryptFailureClass::kCaptureInvalid)] =
        invalid;
    point.survivors[static_cast<int>(DecryptFailureClass::kNoKex)] = no_kex;
    point.survivors[static_cast<int>(DecryptFailureClass::kKexMismatch)] =
        fresh_kex + (reused_kex - point.decryptable);
    curve.points.push_back(point);
  }
  return curve;
}

HarmCurve HarmEngine::SweepCache(std::uint32_t pid, HarmCurve curve) const {
  using attack::DecryptFailureClass;
  std::uint64_t total = 0, total_bytes = 0, invalid = 0, no_id = 0,
                never_cached = 0, eligible = 0;
  // Liveness events: a cached entry exists for [time, cache_end).
  struct Event {
    SimTime at = 0;
    std::uint32_t row = 0;
  };
  std::vector<Event> starts, ends;
  for (const std::uint32_t idx : profile_rows_[pid]) {
    const Row& row = rows_[idx];
    ++total;
    total_bytes += row.wire_bytes;
    if (!row.valid) {
      ++invalid;
      continue;
    }
    if (!row.has_session_id) {
      ++no_id;
      continue;
    }
    if (!row.cacheable) {
      // ID on the wire but the server never stored it (issue-only quirk
      // or cache disabled): a dump can never contain the secret.
      ++never_cached;
      continue;
    }
    ++eligible;
    starts.push_back(Event{row.time, idx});
    ends.push_back(Event{row.cache_end, idx});
  }
  const auto by_at = [](const Event& a, const Event& b) {
    return a.at != b.at ? a.at < b.at : a.row < b.row;
  };
  std::sort(starts.begin(), starts.end(), by_at);
  std::sort(ends.begin(), ends.end(), by_at);

  std::size_t si = 0, ei = 0;
  std::uint64_t live = 0, live_bytes = 0;
  std::map<std::uint32_t, std::uint32_t> live_domains;
  std::multiset<SimTime> live_times;
  for (const SimTime t : times_) {
    // The dump at T holds entries created at or before T ...
    for (; si < starts.size() && starts[si].at <= t; ++si) {
      const Row& row = rows_[starts[si].row];
      ++live;
      live_bytes += row.wire_bytes;
      ++live_domains[row.domain];
      live_times.insert(row.time);
    }
    // ... and not yet expired or flushed (end <= T means gone at T).
    for (; ei < ends.size() && ends[ei].at <= t; ++ei) {
      const Row& row = rows_[ends[ei].row];
      --live;
      live_bytes -= row.wire_bytes;
      const auto dom = live_domains.find(row.domain);
      if (--dom->second == 0) live_domains.erase(dom);
      live_times.erase(live_times.find(row.time));
    }
    HarmPoint point;
    point.t = t;
    point.connections = total;
    point.wire_bytes = total_bytes;
    point.decryptable = live;
    point.decryptable_bytes = live_bytes;
    point.decryptable_domains = live_domains.size();
    point.oldest_decrypted = live_times.empty() ? -1 : *live_times.begin();
    point.survivors[static_cast<int>(DecryptFailureClass::kCaptureInvalid)] =
        invalid;
    point.survivors[static_cast<int>(DecryptFailureClass::kNoSessionId)] =
        no_id;
    point.survivors[static_cast<int>(DecryptFailureClass::kCacheMiss)] =
        never_cached + (eligible - live);
    curve.points.push_back(point);
  }
  return curve;
}

std::string RenderHarmCurvesJsonl(const std::vector<HarmCurve>& curves) {
  std::string out;
  for (const HarmCurve& curve : curves) {
    for (const HarmPoint& point : curve.points) {
      out += "{\"profile\":\"";
      out += curve.profile;
      out += "\",\"vector\":\"";
      out += ToString(curve.vector);
      out += "\",\"t\":";
      AppendSigned(out, point.t);
      out += ",\"connections\":";
      AppendInt(out, point.connections);
      out += ",\"wire_bytes\":";
      AppendInt(out, point.wire_bytes);
      out += ",\"decryptable\":";
      AppendInt(out, point.decryptable);
      out += ",\"decryptable_bytes\":";
      AppendInt(out, point.decryptable_bytes);
      out += ",\"decryptable_domains\":";
      AppendInt(out, point.decryptable_domains);
      out += ",\"decryptable_ppm\":";
      AppendInt(out, point.connections == 0
                         ? 0
                         : point.decryptable * 1000000 / point.connections);
      out += ",\"oldest_decrypted\":";
      AppendSigned(out, point.oldest_decrypted);
      out += ",\"survivors\":{";
      bool first = true;
      for (int c = 0; c < attack::kDecryptFailureClassCount; ++c) {
        if (point.survivors[c] == 0) continue;
        if (!first) out += ',';
        first = false;
        out += '"';
        out += attack::ToString(static_cast<attack::DecryptFailureClass>(c));
        out += "\":";
        AppendInt(out, point.survivors[c]);
      }
      out += "}}\n";
    }
  }
  return out;
}

}  // namespace tlsharm::adversary
