// Table 5: Largest Session Cache Service Groups.
//
// Cross-domain session-ID resumption with up to five co-AS and five co-IP
// candidates per domain, grown transitively (§5.1).
#include "common.h"
#include "scanner/experiments.h"

using namespace tlsharm;
using namespace tlsharm::bench;

int main() {
  World world = BuildWorld("Table 5: Largest Session Cache Service Groups");
  const auto result =
      scanner::MeasureSessionCacheGroups(*world.net, /*day=*/0, /*seed=*/501);

  std::size_t singles = 0;
  for (const auto& group : result.groups) singles += group.size() == 1;

  PrintRow("domains supporting ID resumption",
           PaperCountAtScale(357536, world.scale),
           FormatCount(result.participants));
  PrintRow("service groups found", PaperCountAtScale(212491, world.scale),
           FormatCount(result.groups.size()));
  PrintRow("single-domain groups", "86%",
           Pct(result.groups.empty()
                   ? 0
                   : static_cast<double>(singles) / result.groups.size(), 0));

  std::printf("\nTen largest session-cache service groups:\n");
  TextTable table({"Operator", "# domains", "paper row"});
  const char* paper_rows[] = {
      "CloudFlare #1: 30,163", "CloudFlare #2: 15,241",
      "Automattic #1: 2,247",  "Automattic #2: 1,552",
      "Blogspot #1: 849",      "Blogspot #2: 743",
      "Blogspot #3: 732",      "Blogspot #4: 648",
      "Shopify: 593",          "Blogspot #5: 561"};
  for (std::size_t i = 0; i < 10 && i < result.groups.size(); ++i) {
    const auto& group = result.groups[i];
    if (group.size() < 2) break;
    table.AddRow({world.net->GetDomain(group.front()).operator_name,
                  FormatCount(group.size()),
                  i < 10 ? paper_rows[i] : ""});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(paper counts are at Top-1M scale; multiply ours by %.1f to"
              " compare)\n", 1.0 / world.scale);
  return 0;
}
