// bench_recovery: what crash safety costs, and what recovery buys.
//
// Runs the same daily-scan study twice on identically constructed worlds —
// once through the plain recording pipeline (engine + text store +
// warehouse, no journal) and once as a journaled campaign
// (campaign/campaign.h: write-ahead RUNLOG, durable store + warehouse
// commits, per-day state checkpoints) — and reports the journal's overhead
// in us/probe. Both write the same artifacts; the delta is purely the
// crash-safety machinery. Then reopens the finished campaign with --resume to measure
// restore latency: how long a crash-free restart takes to verify the
// journal, re-check every artifact digest, and reload the final state
// instead of rescanning the study. Cross-checks that the campaign's scan
// results match the bare engine's exactly. Results land in
// BENCH_recovery.json.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <unistd.h>

#include <fstream>

#include "campaign/campaign.h"
#include "common.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/prof_report.h"
#include "scanner/scan_engine.h"
#include "scanner/store.h"
#include "util/durable.h"
#include "warehouse/warehouse.h"

using namespace tlsharm;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::unique_ptr<simnet::Internet> FreshWorld(const bench::World& world) {
  return std::make_unique<simnet::Internet>(
      simnet::PaperPopulationSpec(world.population), bench::StudySeed());
}

bool SameScan(const scanner::DailyScanResult& a,
              const scanner::DailyScanResult& b) {
  bool same = a.loss.size() == b.loss.size();
  for (std::size_t day = 0; same && day < a.loss.size(); ++day) {
    same = a.loss[day].scheduled == b.loss[day].scheduled &&
           a.loss[day].lost == b.loss[day].lost;
  }
  return same && a.core_domains == b.core_domains &&
         a.core_ever_ticket == b.core_ever_ticket &&
         a.core_ever_ecdhe == b.core_ever_ecdhe &&
         a.core_ever_dhe_connect == b.core_ever_dhe_connect;
}

}  // namespace

// Scan-vs-scan timing on a shared machine is noisy relative to a
// single-digit-percent effect, so both configurations run `reps` times
// interleaved and the minimum elapsed time represents each (the run least
// disturbed by scheduling noise).
int Reps() {
  if (const char* env = std::getenv("TLSHARM_BENCH_REPS")) {
    const int reps = std::atoi(env);
    if (reps >= 1 && reps <= 20) return reps;
  }
  return 3;
}

int main() {
  bench::World world = bench::BuildWorld("crash-safe campaign overhead");
  int threads = scanner::ScanThreadsFromEnv();
  if (threads <= 1) threads = 8;
  const std::uint64_t seed = bench::StudySeed() + 301;
  const int reps = Reps();

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("bench-recovery-" + std::to_string(::getpid()))).string();

  scanner::DailyScanResult bare;
  campaign::CampaignResult journaled;
  double bare_ms = 0, campaign_ms = 0;
  std::uint64_t barriers = 0;
  bool matches = true;
  std::string error;
  const std::string base_dir = dir + "-baseline";
  for (int rep = 0; rep < reps; ++rep) {
    // Baseline: the engine writing the SAME artifacts (text store +
    // warehouse) but without the journal, the per-day fsync/commit
    // discipline, or the state checkpoints — the pre-campaign recording
    // pipeline. The delta against the campaign is purely what crash
    // safety costs. Scanning mutates server state, so every run gets a
    // fresh, identically constructed world.
    std::filesystem::remove_all(base_dir);
    std::filesystem::create_directories(base_dir);
    world.net = FreshWorld(world);
    {
      std::ofstream store_file(base_dir + "/store.txt", std::ios::binary);
      scanner::ObservationWriter text_store(store_file);
      std::string wh_error;
      auto wh = warehouse::WarehouseWriter::Create(base_dir + "/warehouse",
                                                   &wh_error);
      if (wh == nullptr) {
        std::fprintf(stderr, "baseline warehouse: %s\n", wh_error.c_str());
        return 1;
      }
      scanner::MultiStoreWriter fan_out;
      fan_out.Add(&text_store);
      fan_out.Add(wh.get());
      scanner::ScanEngineOptions options;
      options.threads = threads;
      options.store = &fan_out;
      // A campaign always meters (its durable metrics.json requires it),
      // so the baseline must too or the delta would mostly be telemetry.
      obs::MetricsRegistry metrics;
      options.metrics = &metrics;
      const auto start = std::chrono::steady_clock::now();
      bare = scanner::RunShardedDailyScans(*world.net, world.days, seed,
                                           options);
      fan_out.Finish();
      const double bare_rep_ms = MsSince(start);
      if (rep == 0 || bare_rep_ms < bare_ms) bare_ms = bare_rep_ms;
    }

    // Journaled campaign: every day both journaled and committed durably
    // (store fsync, warehouse segment + MANIFEST, fold checkpoint, state
    // file, metrics.json).
    std::filesystem::remove_all(dir);
    world.net = FreshWorld(world);
    campaign::CampaignSpec spec;
    spec.dir = dir;
    spec.days = world.days;
    spec.seed = seed;
    spec.threads = threads;
    spec.world_digest = bench::StudySeed();
    const std::uint64_t barriers_before = CrashPointsPassed();
    const auto start = std::chrono::steady_clock::now();
    if (!campaign::RunCampaign(*world.net, spec, &journaled, &error)) {
      std::fprintf(stderr, "campaign failed: %s\n", error.c_str());
      return 1;
    }
    const double campaign_rep_ms = MsSince(start);
    if (rep == 0) barriers = CrashPointsPassed() - barriers_before;
    if (rep == 0 || campaign_rep_ms < campaign_ms) {
      campaign_ms = campaign_rep_ms;
    }
    matches = matches && SameScan(bare, journaled.scan);
  }
  std::filesystem::remove_all(base_dir);

  std::uint64_t probes = 0;
  for (const auto& day : bare.loss) probes += day.scheduled;

  // Restore latency: resuming the completed campaign replays nothing; the
  // cost is loading + digest-verifying every committed artifact. This is
  // the fixed price a crashed study pays before rescanning its lost day.
  world.net = FreshWorld(world);
  campaign::CampaignSpec spec;
  spec.dir = dir;
  spec.days = world.days;
  spec.seed = seed;
  spec.threads = threads;
  spec.world_digest = bench::StudySeed();
  spec.resume = true;
  campaign::CampaignResult restored;
  auto start = std::chrono::steady_clock::now();
  if (!campaign::RunCampaign(*world.net, spec, &restored, &error)) {
    std::fprintf(stderr, "campaign resume failed: %s\n", error.c_str());
    return 1;
  }
  const double restore_ms = MsSince(start);
  const bool restore_ok =
      restored.recovery.days_replayed == world.days &&
      SameScan(bare, restored.scan);
  std::filesystem::remove_all(dir);

  // Cross-check against the performance plane: a profiled campaign run
  // measures the commit barrier directly (campaign.commit.day wraps steps
  // 3–5 of the commit protocol; durable.fsync wraps every fsync inside
  // it). The profiler's per-day commit cost and the subtraction-based
  // commit_ms_per_day above are independent timing sources for the same
  // machinery, so they must roughly agree — a cheap tripwire against
  // either measurement silently drifting into nonsense.
  double prof_commit_ms_per_day = 0, prof_fsync_ms = 0;
  std::uint64_t prof_commit_days = 0, prof_fsyncs = 0;
  {
    const std::string prof_dir = dir + "-prof";
    std::filesystem::remove_all(prof_dir);
    world.net = FreshWorld(world);
    campaign::CampaignSpec prof_spec = spec;
    prof_spec.dir = prof_dir;
    prof_spec.resume = false;
    obs::SetProfilingEnabled(true);
    obs::ProfReset();
    campaign::CampaignResult prof_result;
    if (!campaign::RunCampaign(*world.net, prof_spec, &prof_result, &error)) {
      std::fprintf(stderr, "profiled campaign failed: %s\n", error.c_str());
      return 1;
    }
    const obs::ProfSnapshot snap = obs::ProfSnapshotNow();
    obs::SetProfilingEnabled(false);
    obs::ProfReset();
    std::filesystem::remove_all(prof_dir);
    for (const obs::ProfSpanStats& span : snap.spans) {
      if (span.name == "campaign.commit.day") {
        prof_commit_days = span.count;
        prof_commit_ms_per_day = span.count > 0
            ? static_cast<double>(span.total_ns) / 1e6 /
                  static_cast<double>(span.count)
            : 0;
      } else if (span.name == "durable.fsync") {
        prof_fsyncs = span.count;
        prof_fsync_ms = static_cast<double>(span.total_ns) / 1e6;
      }
    }
  }
  const double commit_ms_per_day = (campaign_ms - bare_ms) / world.days;
  // Structural checks always hold: one commit span per committed day, and
  // a durable commit necessarily fsyncs. The ratio check only engages when
  // the subtraction-based number is large enough to be meaningful — below
  // ~1 ms/day it is dominated by scan-time noise between the two runs.
  bool timing_sources_agree =
      prof_commit_days == static_cast<std::uint64_t>(world.days) &&
      prof_fsyncs > 0;
  if (timing_sources_agree && commit_ms_per_day > 1.0) {
    const double ratio = prof_commit_ms_per_day / commit_ms_per_day;
    timing_sources_agree = ratio >= 0.2 && ratio <= 5.0;
  }

  const double per_probe_bare =
      probes > 0 ? bare_ms * 1000.0 / static_cast<double>(probes) : 0;
  const double per_probe_campaign =
      probes > 0 ? campaign_ms * 1000.0 / static_cast<double>(probes) : 0;
  const double overhead_pct =
      bare_ms > 0 ? (campaign_ms - bare_ms) * 100.0 / bare_ms : 0;

  std::printf("campaign: %llu probes over %d days, %d threads, %llu "
              "durability barriers\n",
              static_cast<unsigned long long>(probes), world.days, threads,
              static_cast<unsigned long long>(barriers));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f us", per_probe_bare);
  bench::PrintRow("us per probe (recording, no journal)", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.1f us", per_probe_campaign);
  bench::PrintRow("us per probe (journaled campaign)", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.2f%%", overhead_pct);
  bench::PrintRow("journal + durable-commit overhead", "<2%", buf);
  // The overhead is a fixed per-day commit cost (journal rewrites, fsyncs,
  // checkpoint + state encode), so it amortizes as the population grows —
  // report it in absolute terms too.
  std::snprintf(buf, sizeof(buf), "%.1f ms", commit_ms_per_day);
  bench::PrintRow("commit cost per day (absolute)", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.2f ms (%llu fsyncs, %.2f ms)",
                prof_commit_ms_per_day,
                static_cast<unsigned long long>(prof_fsyncs), prof_fsync_ms);
  bench::PrintRow("commit cost per day (profiler)", "-", buf);
  bench::PrintRow("timing sources agree", "yes",
                  timing_sources_agree ? "yes" : "NO");
  std::snprintf(buf, sizeof(buf), "%.1f ms (%d days)", restore_ms,
                restored.recovery.days_replayed);
  bench::PrintRow("restore latency (resume, no rescan)", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.2f ms", restore_ms / world.days);
  bench::PrintRow("restore latency per committed day", "-", buf);
  bench::PrintRow("campaign results match plain pipeline", "yes",
                  matches ? "yes" : "NO");
  bench::PrintRow("restored results match plain pipeline", "yes",
                  restore_ok ? "yes" : "NO");

  bench::JsonReport report("recovery");
  report.Add("population", static_cast<std::uint64_t>(world.population));
  report.Add("days", world.days);
  report.Add("threads", threads);
  report.Add("probes", probes);
  report.Add("barriers", barriers);
  report.Add("bare_ms", bare_ms);
  report.Add("campaign_ms", campaign_ms);
  report.Add("us_per_probe_bare", per_probe_bare);
  report.Add("us_per_probe_campaign", per_probe_campaign);
  report.Add("journal_overhead_pct", overhead_pct);
  report.Add("commit_ms_per_day", commit_ms_per_day);
  report.Add("prof_commit_ms_per_day", prof_commit_ms_per_day);
  report.Add("prof_fsyncs", prof_fsyncs);
  report.Add("prof_fsync_ms", prof_fsync_ms);
  report.AddString("timing_sources_agree",
                   timing_sources_agree ? "yes" : "no");
  report.Add("restore_ms", restore_ms);
  report.Add("restore_ms_per_day", restore_ms / world.days);
  report.AddString("deterministic", matches && restore_ok ? "yes" : "no");
  const std::string path = report.Write();
  std::printf("\nwrote %s\n", path.c_str());
  return matches && restore_ok && timing_sources_agree ? 0 : 1;
}
