// bench_harm: the cost of the adversary plane, end to end.
//
// Three numbers gate the record-now-decrypt-later pipeline:
//   * capture overhead — a full daily-scan campaign with the recorder
//     attached vs without, min-of-reps, as a percentage of probe
//     throughput (the recorder must stay under 5%);
//   * fold cost — µs per archived connection to ingest the archive into
//     the HarmEngine and seal the secret timelines;
//   * sweep cost — ms per study day to produce every (profile, vector)
//     harm curve across all candidate compromise times.
// Results land in BENCH_harm.json; the capture-vs-plain scans are also
// cross-checked for identical aggregates (recording must never perturb
// the scan).
#include <chrono>
#include <cstdlib>
#include <memory>

#include "adversary/replay.h"
#include "attack/record.h"
#include "common.h"
#include "scanner/scan_engine.h"

using namespace tlsharm;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int Reps() {
  if (const char* env = std::getenv("TLSHARM_BENCH_REPS")) {
    const int reps = std::atoi(env);
    if (reps >= 1 && reps <= 20) return reps;
  }
  return 3;
}

struct ScanRun {
  double ms = 0;
  std::uint64_t probes = 0;
  std::uint64_t core_domains = 0;
};

// One full campaign on a fresh, identically seeded world; `capture`
// optionally attaches the recorder.
ScanRun RunScan(const bench::World& world, int threads,
                attack::CaptureBufferSink* capture) {
  ScanRun run;
  auto net = std::make_unique<simnet::Internet>(
      simnet::PaperPopulationSpec(world.population), bench::StudySeed());
  scanner::ScanEngineOptions options;
  options.threads = threads;
  options.capture = capture;
  const auto start = std::chrono::steady_clock::now();
  const scanner::DailyScanResult result = scanner::RunShardedDailyScans(
      *net, world.days, bench::StudySeed() + 701, options);
  run.ms = MsSince(start);
  for (const auto& day : result.loss) run.probes += day.scheduled;
  run.core_domains = result.core_domains.size();
  return run;
}

}  // namespace

int main() {
  bench::World world = bench::BuildWorld("adversary plane cost");
  world.net.reset();  // every scan run builds its own world
  int threads = scanner::ScanThreadsFromEnv();
  if (threads <= 1) threads = 8;
  const int reps = Reps();

  // Capture overhead: min-of-reps plain vs min-of-reps recording. The
  // recorder's sink is in-memory, so the delta is the recording plane
  // itself (SummarizeCapture + staging + canonical merge), not disk.
  double plain_ms = 0;
  double capture_ms = 0;
  std::uint64_t probes = 0;
  std::uint64_t records = 0;
  bool aggregates_match = true;
  attack::CaptureBufferSink archive;  // last rep's archive feeds the fold
  for (int rep = 0; rep < reps; ++rep) {
    const ScanRun plain = RunScan(world, threads, nullptr);
    attack::CaptureBufferSink sink;
    const ScanRun recorded = RunScan(world, threads, &sink);
    if (rep == 0 || plain.ms < plain_ms) plain_ms = plain.ms;
    if (rep == 0 || recorded.ms < capture_ms) capture_ms = recorded.ms;
    probes = plain.probes;
    records = sink.Records().size();
    aggregates_match = aggregates_match &&
                       plain.probes == recorded.probes &&
                       plain.core_domains == recorded.core_domains;
    if (rep + 1 == reps) archive = std::move(sink);
  }
  const double overhead_pct =
      plain_ms > 0 ? (capture_ms - plain_ms) * 100.0 / plain_ms : 0;

  // Fold: archive -> sealed HarmEngine (timelines, interned fingerprints).
  auto net = std::make_unique<simnet::Internet>(
      simnet::PaperPopulationSpec(world.population), bench::StudySeed());
  double fold_ms = 0;
  double sweep_ms = 0;
  std::size_t curve_count = 0;
  std::size_t point_count = 0;
  adversary::HarmEngine engine(*net);
  {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < archive.Records().size(); ++i) {
      engine.Ingest(archive.Days()[i], archive.Records()[i]);
    }
    engine.Seal();
    fold_ms = MsSince(start);
  }
  const double fold_us_per_connection =
      records > 0 ? fold_ms * 1000.0 / static_cast<double>(records) : 0;

  // Sweep: every (profile, vector) curve over all candidate times.
  {
    const auto start = std::chrono::steady_clock::now();
    const std::vector<adversary::HarmCurve> curves = engine.Sweep();
    sweep_ms = MsSince(start);
    curve_count = curves.size();
    for (const adversary::HarmCurve& curve : curves) {
      point_count += curve.points.size();
    }
  }
  const double sweep_ms_per_day =
      world.days > 0 ? sweep_ms / static_cast<double>(world.days) : 0;

  char buf[96];
  std::printf("capture overhead (%d reps, %d threads, %llu probes)\n", reps,
              threads, static_cast<unsigned long long>(probes));
  std::snprintf(buf, sizeof(buf), "%.1f ms", plain_ms);
  bench::PrintRow("scan without recorder (min)", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.1f ms (%llu records)", capture_ms,
                static_cast<unsigned long long>(records));
  bench::PrintRow("scan with recorder (min)", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.2f%%", overhead_pct);
  bench::PrintRow("recorder overhead", "<5%", buf);
  bench::PrintRow("scan aggregates unperturbed", "yes",
                  aggregates_match ? "yes" : "NO");
  std::snprintf(buf, sizeof(buf), "%.1f ms (%.2f us/connection)", fold_ms,
                fold_us_per_connection);
  bench::PrintRow("archive fold + seal", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.1f ms (%zu curves, %zu points)",
                sweep_ms, curve_count, point_count);
  bench::PrintRow("full harm-curve sweep", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.2f ms/day", sweep_ms_per_day);
  bench::PrintRow("sweep per study day", "-", buf);

  bench::JsonReport report("harm");
  report.Add("population", static_cast<std::uint64_t>(world.population));
  report.Add("days", world.days);
  report.Add("threads", threads);
  report.Add("reps", reps);
  report.Add("probes", probes);
  report.Add("records", records);
  report.Add("scan_plain_ms", plain_ms);
  report.Add("scan_capture_ms", capture_ms);
  report.Add("capture_overhead_pct", overhead_pct);
  report.Add("fold_ms", fold_ms);
  report.Add("fold_us_per_connection", fold_us_per_connection);
  report.Add("curve_sweep_ms", sweep_ms);
  report.Add("curve_sweep_ms_per_day", sweep_ms_per_day);
  report.Add("curves", static_cast<std::uint64_t>(curve_count));
  report.Add("curve_points", static_cast<std::uint64_t>(point_count));
  report.AddString("scan_unperturbed", aggregates_match ? "yes" : "no");
  const std::string path = report.Write();
  std::printf("\nwrote %s\n", path.c_str());
  return aggregates_match ? 0 : 1;
}
