// §3 dataset statistics: Top-N churn over the nine weeks and the stable
// cohort's HTTPS/trust/mechanism funnel.
#include "common.h"
#include "scanner/experiments.h"

using namespace tlsharm;
using namespace tlsharm::bench;

int main() {
  World world = BuildWorld("Section 3: Alexa Top Million dataset churn");
  simnet::Internet& net = *world.net;

  const auto stats = scanner::MeasureChurn(net, world.days);
  PrintRow("unique domains ever listed",
           PaperCountAtScale(1527644, world.scale),
           FormatCount(stats.unique_domains));
  PrintRow("listed on <= 7 of the polls",
           PaperCountAtScale(155000, world.scale),
           FormatCount(stats.few_polls));
  PrintRow("domains listed every day",
           PaperCountAtScale(539546, world.scale),
           FormatCount(stats.always_listed) + " (" +
               Pct(static_cast<double>(stats.always_listed) /
                   world.population, 0) +
               " of list; paper 54%)");
  PrintRow("mean daily list size", FormatCount(world.population),
           FormatDouble(stats.mean_daily_list, 0));
  PrintRow("stable cohort: ever HTTPS", "68%",
           Pct(static_cast<double>(stats.always_https) /
               stats.always_listed, 0));
  PrintRow("stable cohort: ever browser-trusted", "54%",
           Pct(static_cast<double>(stats.always_trusted) /
               stats.always_listed, 0));

  // Mechanism funnel (paper: 288,252 of 291,643 = 99%): a short daily scan
  // would suffice, but reuse the single-day ticket probe for speed.
  const auto tickets = scanner::MeasureTicketSupport(net, 0, 2, 303);
  PrintRow("trusted domains issuing tickets (single day)", "~81%",
           Pct(static_cast<double>(tickets.supported) / tickets.trusted, 0));
  return 0;
}
