// §3 dataset statistics: Top-N churn over the nine weeks and the stable
// cohort's HTTPS/trust/mechanism funnel, plus the scan-loss accounting the
// paper does when sizing its datasets against an unreliable network.
#include <algorithm>
#include <string>

#include "common.h"
#include "scanner/experiments.h"

using namespace tlsharm;
using namespace tlsharm::bench;

int main() {
  World world = BuildWorld("Section 3: Alexa Top Million dataset churn");
  simnet::Internet& net = *world.net;

  const auto stats = scanner::MeasureChurn(net, world.days);
  PrintRow("unique domains ever listed",
           PaperCountAtScale(1527644, world.scale),
           FormatCount(stats.unique_domains));
  PrintRow("listed on <= 7 of the polls",
           PaperCountAtScale(155000, world.scale),
           FormatCount(stats.few_polls));
  PrintRow("domains listed every day",
           PaperCountAtScale(539546, world.scale),
           FormatCount(stats.always_listed) + " (" +
               Pct(static_cast<double>(stats.always_listed) /
                   world.population, 0) +
               " of list; paper 54%)");
  PrintRow("mean daily list size", FormatCount(world.population),
           FormatDouble(stats.mean_daily_list, 0));
  PrintRow("stable cohort: ever HTTPS", "68%",
           Pct(static_cast<double>(stats.always_https) /
               stats.always_listed, 0));
  PrintRow("stable cohort: ever browser-trusted", "54%",
           Pct(static_cast<double>(stats.always_trusted) /
               stats.always_listed, 0));

  // Mechanism funnel (paper: 288,252 of 291,643 = 99%): a short daily scan
  // would suffice, but reuse the single-day ticket probe for speed.
  const auto tickets = scanner::MeasureTicketSupport(net, 0, 2, 303);
  PrintRow("trusted domains issuing tickets (single day)", "~81%",
           Pct(static_cast<double>(tickets.supported) / tickets.trusted, 0));

  // --- probe loss under a faulty network -----------------------------------
  // The real scans ran against hosts that refuse, reset, stall and garble;
  // replay a week of daily scans with the default ~5% fault mix and report
  // where the (post-retry, post-requeue) losses land in the taxonomy.
  net.SetFaultSpec(simnet::DefaultFaultSpec());
  scanner::ScanRobustness robustness;
  robustness.retry.max_attempts = 3;
  const int loss_days = std::min(world.days, 7);
  const auto faulty =
      scanner::RunDailyScans(net, loss_days, StudySeed() + 1, robustness);
  std::printf("\nPer-day probe loss, default fault mix "
              "(3 attempts + end-of-pass requeue):\n");
  for (int day = 0; day < loss_days; ++day) {
    const scanner::DayLoss& loss = faulty.loss[day];
    std::string by_class;
    for (int c = 0; c < scanner::kProbeFailureClasses; ++c) {
      if (loss.lost_by_class[c] == 0) continue;
      if (!by_class.empty()) by_class += ", ";
      by_class += std::string(
                      ToString(static_cast<scanner::ProbeFailure>(c))) +
                  "=" + FormatCount(loss.lost_by_class[c]);
    }
    std::printf("  day %2d: scheduled=%-8s recovered=%-6s lost=%-6s "
                "(%s)%s%s\n",
                day, FormatCount(loss.scheduled).c_str(),
                FormatCount(loss.recovered).c_str(),
                FormatCount(loss.lost).c_str(),
                Pct(loss.LossRate(), 2).c_str(),
                by_class.empty() ? "" : "  ", by_class.c_str());
  }
  return 0;
}
