// Shared infrastructure for the experiment benches: world construction,
// paper-vs-measured row printing, and scaling helpers.
//
// Every bench accepts two environment knobs:
//   TLSHARM_POPULATION — simulated Top-N list size (default 20,000)
//   TLSHARM_DAYS       — study length in days (default 63, the paper's 9
//                        weeks)
// Absolute paper counts are compared after scaling by population/1M.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "simnet/internet.h"
#include "util/stats.h"
#include "util/table.h"

namespace tlsharm::bench {

inline int StudyDays() {
  if (const char* env = std::getenv("TLSHARM_DAYS")) {
    const int days = std::atoi(env);
    if (days >= 2 && days <= 63) return days;
  }
  return 63;
}

inline std::uint64_t StudySeed() { return 20160302; }

// Peak resident set size (VmHWM — the process high-water mark) in MiB from
// /proc/self/status; 0.0 when unavailable. Monotonic over the process
// lifetime: sampling after a phase reports the peak of everything run so
// far, which is exactly the bound a memory gate wants.
inline double ReadPeakRssMb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      mb = std::atof(line + 6) / 1024.0;  // the kernel reports kB
      break;
    }
  }
  std::fclose(f);
  return mb;
}

struct World {
  std::unique_ptr<simnet::Internet> net;
  std::size_t population;
  double scale;  // population / 1,000,000 (for count comparisons)
  int days;
};

inline World BuildWorld(const char* bench_name) {
  World world;
  world.population = simnet::DefaultPopulationSize();
  world.days = StudyDays();
  world.scale = static_cast<double>(world.population) / 1'000'000.0;
  std::printf("== %s ==\n", bench_name);
  std::printf("population=%zu (Top-1M scale factor %.4f), days=%d\n",
              world.population, world.scale, world.days);
  const auto start = std::chrono::steady_clock::now();
  world.net = std::make_unique<simnet::Internet>(
      simnet::PaperPopulationSpec(world.population), StudySeed());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  std::printf("world: %zu domains, %zu terminators (built in %lld ms)\n\n",
              world.net->DomainCount(), world.net->TerminatorCount(),
              static_cast<long long>(elapsed.count()));
  return world;
}

// One "paper vs measured" comparison row.
inline void PrintRow(const std::string& metric, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-58s paper=%-14s measured=%s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

inline std::string Pct(double fraction, int decimals = 1) {
  return FormatPercent(fraction, decimals);
}

inline std::string Count(double scaled) {
  return FormatCount(static_cast<std::uint64_t>(scaled + 0.5));
}

// Renders a paper count alongside what it would be at our scale.
inline std::string PaperCountAtScale(std::uint64_t paper_count,
                                     double scale) {
  return FormatCount(paper_count) + "(" +
         FormatCount(static_cast<std::uint64_t>(paper_count * scale + 0.5)) +
         "@scale)";
}

// Machine-readable bench results: collects flat key/value pairs and writes
// them as BENCH_<name>.json in the working directory, so CI can track
// throughput numbers without parsing the human-readable tables.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", value);
    fields_.emplace_back(key, buf);
  }
  void Add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void AddString(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + value + "\"");
  }
  // Embeds an already-rendered JSON value verbatim (e.g. a metrics
  // snapshot from obs::MetricsRegistry::SnapshotJson()).
  void AddRaw(const std::string& key, std::string rendered_json) {
    fields_.emplace_back(key, std::move(rendered_json));
  }

  // Writes BENCH_<name>.json and returns the path ("" on failure).
  std::string Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return "";
    std::fputs("{\n", out);
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(out, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fputs("}\n", out);
    std::fclose(out);
    return path;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;  // rendered
};

}  // namespace tlsharm::bench
