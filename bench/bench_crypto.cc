// bench_crypto: crypto hot-path microbenchmarks, reference vs optimized.
//
// Times the primitives the probe hot path lives in — fixed-base and
// variable-base modular exponentiation, Schnorr sign/verify, the TLS 1.2
// PRF, the HMAC-DRBG — and a full end-to-end probe loop, each once with
// the naive reference implementations (TLSHARM_REFERENCE_CRYPTO semantics,
// toggled in-process via crypto::SetReferenceCrypto) and once with the
// optimized paths. Every pair of runs is differentially checked: the
// optimized path must produce byte-identical outputs, and the probe loop
// identical observations. Results land in BENCH_crypto.json.
//
// `--selftest` runs the same differential checks at reduced iteration
// counts and skips the JSON report — the CI sanitizer gate.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "crypto/biguint.h"
#include "crypto/drbg.h"
#include "crypto/ffdh.h"
#include "crypto/hmac.h"
#include "crypto/prf.h"
#include "crypto/schnorr.h"
#include "crypto/tuning.h"
#include "scanner/prober.h"
#include "simnet/internet.h"

using namespace tlsharm;
using crypto::BigUInt;
using crypto::Montgomery;

namespace {

bool g_selftest = false;
bool g_all_ok = true;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::printf("DIFFERENTIAL MISMATCH: %s\n", what);
    g_all_ok = false;
  }
}

// Wall-clock microseconds for `iters` runs of `fn`, divided per iteration.
template <typename Fn>
double UsPerOp(int iters, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn(i);
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
             .count() /
         iters;
}

void PrintSpeedup(const std::string& what, double ref_us, double opt_us) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.2f us -> %.2f us (%.2fx)", ref_us,
                opt_us, opt_us > 0 ? ref_us / opt_us : 0);
  bench::PrintRow(what, "-", buf);
}

void ReportPair(bench::JsonReport& report, const std::string& key,
                double ref_us, double opt_us) {
  report.Add(key + "_ref_us", ref_us);
  report.Add(key + "_opt_us", opt_us);
  report.Add(key + "_speedup", opt_us > 0 ? ref_us / opt_us : 0.0);
}

// Folds the analysis-relevant observation fields into a running digest so
// the reference and optimized probe loops can be compared exactly.
std::uint64_t FoldObservation(std::uint64_t acc,
                              const scanner::HandshakeObservation& o) {
  const auto mix = [&acc](std::uint64_t v) {
    acc ^= v + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
  };
  mix(o.domain);
  mix(static_cast<std::uint64_t>(o.time));
  mix((o.connected ? 1u : 0u) | (o.handshake_ok ? 2u : 0u) |
      (o.trusted ? 4u : 0u) | (o.session_id_set ? 8u : 0u) |
      (o.ticket_issued ? 16u : 0u));
  mix(static_cast<std::uint64_t>(o.failure));
  mix(static_cast<std::uint64_t>(o.suite));
  mix(o.kex_group);
  mix(o.kex_value);
  mix(o.session_id);
  mix(o.ticket_lifetime_hint);
  mix(o.stek_id);
  return acc;
}

// --- fixed/variable-base modular exponentiation ----------------------------

struct ModexpResult {
  double fixed_ref_us = 0, fixed_opt_us = 0;
  double window_ref_us = 0, window_opt_us = 0;
};

ModexpResult BenchModexpGroup(const crypto::FfdhParams& params, int iters) {
  const BigUInt p = BigUInt::FromHex(params.p_hex);
  const BigUInt q = BigUInt::FromHex(params.q_hex);
  const BigUInt g = BigUInt::FromU64(params.g);
  const Montgomery mont(p);
  const Montgomery::FixedBaseTable table =
      mont.PrecomputeFixedBase(g, q.BitLength());

  // Deterministic exponents in [0, q) and a variable base in [0, p).
  crypto::Drbg drbg(Bytes{'m', 'o', 'd', 'e', 'x', 'p'});
  const Montgomery mont_q(q);
  const std::size_t q_width = (q.BitLength() + 7) / 8;
  std::vector<BigUInt> exps;
  for (int i = 0; i < iters; ++i) {
    exps.push_back(mont_q.ReduceBytes(drbg.Generate(q_width)));
  }
  const BigUInt base = mont.Reduce(BigUInt::FromBytes(drbg.Generate(
      (p.BitLength() + 7) / 8 + 8)));

  ModexpResult r;
  std::uint64_t sink = 0;

  // Fixed base (the keygen/sign/DH-public shape).
  r.fixed_ref_us = UsPerOp(
      iters, [&](int i) { sink ^= mont.PowModReference(g, exps[i]).Limb(0); });
  r.fixed_opt_us = UsPerOp(iters, [&](int i) {
    sink ^= mont.PowModFixedBase(table, exps[i]).Limb(0);
  });

  // Variable base (the shared-secret shape), via the global dispatch.
  crypto::SetReferenceCrypto(true);
  r.window_ref_us = UsPerOp(
      iters, [&](int i) { sink ^= mont.PowMod(base, exps[i]).Limb(0); });
  crypto::SetReferenceCrypto(false);
  r.window_opt_us = UsPerOp(
      iters, [&](int i) { sink ^= mont.PowMod(base, exps[i]).Limb(0); });

  // Differential: every optimized path equals the reference ladder, over
  // the random exponents plus the edge cases.
  std::vector<BigUInt> edge = {BigUInt(), BigUInt::FromU64(1),
                               BigUInt::FromU64(2),
                               q,
                               BigUInt::Sub(q, BigUInt::FromU64(1)),
                               BigUInt::Add(q, BigUInt::FromU64(1))};
  for (std::size_t bit = 1; bit < q.BitLength(); bit *= 2) {
    BigUInt e = BigUInt::FromU64(1);
    for (std::size_t i = 0; i < bit; ++i) e = e.ShiftLeft1();
    edge.push_back(e);  // 2^bit
  }
  std::vector<BigUInt> checks = edge;
  const int check_count = g_selftest ? iters : std::min(iters, 16);
  checks.insert(checks.end(), exps.begin(), exps.begin() + check_count);
  const Montgomery::OddPowers odd = mont.PrecomputeOddPowers(base);
  const Montgomery::WindowTable gw = mont.PrecomputeWindowTable(g);
  const Montgomery::WindowTable bw = mont.PrecomputeWindowTable(base);
  for (const BigUInt& e : checks) {
    Check(mont.PowModWindowed(odd, e) == mont.PowModReference(base, e),
          "PowModWindowed vs reference");
    if (e.BitLength() <= table.MaxExpBits()) {
      Check(mont.PowModFixedBase(table, e) == mont.PowModReference(g, e),
            "PowModFixedBase vs reference");
    }
    const BigUInt lhs = mont.PowModDouble(gw, e, bw, e);
    Check(lhs == mont.MulMod(mont.PowModReference(g, e),
                             mont.PowModReference(base, e)),
          "PowModDouble vs reference");
  }
  if (sink == 0xdeadbeef) std::printf("");  // keep the sink alive
  return r;
}

// --- Schnorr sign / verify -------------------------------------------------

struct SchnorrResult {
  double sign_ref_us = 0, sign_opt_us = 0;
  double verify_ref_us = 0, verify_opt_us = 0;
};

SchnorrResult BenchSchnorr(const crypto::SchnorrScheme& scheme, int iters) {
  crypto::Drbg keygen_drbg(Bytes{'s', 'c', 'h', 'n', 'o', 'r', 'r'});
  const crypto::SchnorrKeyPair kp = scheme.GenerateKeyPair(keygen_drbg);
  std::vector<Bytes> messages;
  for (int i = 0; i < iters; ++i) messages.push_back(keygen_drbg.Generate(32));

  SchnorrResult r;
  // Identically seeded DRBGs give both modes the same nonce stream, so the
  // timed work — and the resulting signatures — match exactly.
  std::vector<crypto::SchnorrSignature> sigs_ref, sigs_opt;
  sigs_ref.reserve(messages.size());
  sigs_opt.reserve(messages.size());
  crypto::Drbg sign_ref(Bytes{'n', 'o', 'n', 'c', 'e'});
  crypto::Drbg sign_opt(Bytes{'n', 'o', 'n', 'c', 'e'});
  crypto::SetReferenceCrypto(true);
  r.sign_ref_us = UsPerOp(iters, [&](int i) {
    sigs_ref.push_back(scheme.Sign(kp.private_key, messages[i], sign_ref));
  });
  crypto::SetReferenceCrypto(false);
  r.sign_opt_us = UsPerOp(iters, [&](int i) {
    sigs_opt.push_back(scheme.Sign(kp.private_key, messages[i], sign_opt));
  });
  for (int i = 0; i < iters; ++i) {
    Check(sigs_ref[i].e == sigs_opt[i].e && sigs_ref[i].s == sigs_opt[i].s,
          "Schnorr signature bytes reference vs optimized");
  }

  crypto::SetReferenceCrypto(true);
  r.verify_ref_us = UsPerOp(iters, [&](int i) {
    Check(scheme.Verify(kp.public_key, messages[i], sigs_ref[i]),
          "reference verify accepts");
  });
  crypto::SetReferenceCrypto(false);
  r.verify_opt_us = UsPerOp(iters, [&](int i) {
    Check(scheme.Verify(kp.public_key, messages[i], sigs_ref[i]),
          "optimized verify accepts");
  });
  // Both modes must also agree on rejection.
  crypto::SchnorrSignature bad = sigs_ref[0];
  bad.e[0] ^= 0x01;
  crypto::SetReferenceCrypto(true);
  const bool ref_rejects = !scheme.Verify(kp.public_key, messages[0], bad);
  crypto::SetReferenceCrypto(false);
  const bool opt_rejects = !scheme.Verify(kp.public_key, messages[0], bad);
  Check(ref_rejects && opt_rejects, "both modes reject a forged signature");
  return r;
}

// --- PRF and DRBG ----------------------------------------------------------

void BenchPrfDrbg(bench::JsonReport* report, int iters) {
  crypto::Drbg seed_drbg(Bytes{'p', 'r', 'f'});
  const Bytes secret = seed_drbg.Generate(48);
  Bytes seed = seed_drbg.Generate(64);

  // Vary the seed each iteration so the cross-call memo never hits and the
  // row isolates the HMAC-midstate win; the memo's effect is measured by the
  // end-to-end probe row instead.
  const auto vary_seed = [&seed](int i) {
    seed[0] = static_cast<std::uint8_t>(i);
    seed[1] = static_cast<std::uint8_t>(i >> 8);
    seed[2] = static_cast<std::uint8_t>(i >> 16);
  };
  Bytes ref_out, opt_out;
  crypto::SetReferenceCrypto(true);
  const double prf_ref_us = UsPerOp(iters, [&](int i) {
    vary_seed(i);
    ref_out = crypto::Tls12Prf(secret, "key expansion", seed, 104);
  });
  crypto::SetReferenceCrypto(false);
  const double prf_opt_us = UsPerOp(iters, [&](int i) {
    vary_seed(i);
    opt_out = crypto::Tls12Prf(secret, "key expansion", seed, 104);
  });
  Check(ref_out == opt_out, "TLS 1.2 PRF reference vs optimized");

  crypto::Drbg drbg_ref(secret), drbg_opt(secret);
  crypto::SetReferenceCrypto(true);
  const double drbg_ref_us =
      UsPerOp(iters, [&](int) { ref_out = drbg_ref.Generate(32); });
  crypto::SetReferenceCrypto(false);
  const double drbg_opt_us =
      UsPerOp(iters, [&](int) { opt_out = drbg_opt.Generate(32); });
  Check(ref_out == opt_out, "HMAC-DRBG stream reference vs optimized");

  // One-shot HMAC over a short ticket-sized message.
  const Bytes mac_key = seed_drbg.Generate(32);
  const Bytes msg = seed_drbg.Generate(192);
  crypto::SetReferenceCrypto(true);
  const double hmac_ref_us =
      UsPerOp(iters, [&](int) { ref_out = crypto::HmacSha256Bytes(mac_key, msg); });
  crypto::SetReferenceCrypto(false);
  const double hmac_opt_us =
      UsPerOp(iters, [&](int) { opt_out = crypto::HmacSha256Bytes(mac_key, msg); });
  Check(ref_out == opt_out, "HMAC-SHA256 reference vs optimized");

  PrintSpeedup("TLS 1.2 PRF (48B secret -> 104B)", prf_ref_us, prf_opt_us);
  PrintSpeedup("HMAC-DRBG Generate(32)", drbg_ref_us, drbg_opt_us);
  PrintSpeedup("HMAC-SHA256 (192B message)", hmac_ref_us, hmac_opt_us);
  if (report != nullptr) {
    ReportPair(*report, "prf", prf_ref_us, prf_opt_us);
    ReportPair(*report, "drbg_generate", drbg_ref_us, drbg_opt_us);
    ReportPair(*report, "hmac", hmac_ref_us, hmac_opt_us);
  }
}

// --- end-to-end probe loop -------------------------------------------------

struct ProbeLoopResult {
  double us_per_probe = 0;            // over all probes (handshake + resume)
  double handshake_us_per_probe = 0;  // full handshakes only
  double resume_us_per_probe = 0;     // resumption attempts only
  std::uint64_t probes = 0;
  std::uint64_t handshakes = 0;
  std::uint64_t resumes = 0;
  std::uint64_t digest = 0;
};

// Probes every domain of a freshly built world for `days` days, with full
// results and a resumption attempt per successful day-0 session — the
// daily-scan shape, compressed. A fresh world per mode keeps server-side
// state (session caches, STEK schedules) identical across modes.
ProbeLoopResult RunProbeLoop(bool reference, std::size_t population,
                             int days) {
  crypto::SetReferenceCrypto(reference);
  simnet::Internet net(simnet::PaperPopulationSpec(population), 991);
  scanner::Prober prober(net, 992);
  scanner::ProbeOptions options;
  options.want_full_result = true;

  ProbeLoopResult r;
  std::vector<scanner::StoredSession> sessions;
  double handshake_us = 0, resume_us = 0;
  const auto section_us = [](auto fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  for (int day = 0; day < days; ++day) {
    const SimTime now = static_cast<SimTime>(day) * 86400 + 3600;
    handshake_us += section_us([&] {
      for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
        const scanner::ProbeResult result = prober.Probe(id, now, options);
        r.digest = FoldObservation(r.digest, result.observation);
        ++r.handshakes;
        if (day == 0 && result.session.valid) {
          sessions.push_back(result.session);
        }
      }
    });
    // Resumption sweep: replay every stored day-0 session.
    resume_us += section_us([&] {
      for (const scanner::StoredSession& session : sessions) {
        const bool accepted =
            prober.TryResume(session, session.domain, now + 7200);
        r.digest = r.digest * 3 + (accepted ? 2 : 1);
        ++r.resumes;
      }
    });
  }
  r.probes = r.handshakes + r.resumes;
  r.handshake_us_per_probe = handshake_us / static_cast<double>(r.handshakes);
  r.resume_us_per_probe =
      r.resumes == 0 ? 0 : resume_us / static_cast<double>(r.resumes);
  r.us_per_probe = (handshake_us + resume_us) / static_cast<double>(r.probes);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  g_selftest = argc > 1 && std::strcmp(argv[1], "--selftest") == 0;
  const int iters = g_selftest ? 40 : 400;
  const std::size_t population = g_selftest ? 150 : 450;
  const int days = g_selftest ? 2 : 3;

  std::printf("== crypto hot paths: reference vs optimized ==\n");

  bench::JsonReport report("crypto");

  const ModexpResult m61 = BenchModexpGroup(crypto::FfdhSim61Params(), iters);
  const ModexpResult m256 =
      BenchModexpGroup(crypto::FfdhSim256Params(), iters);
  PrintSpeedup("modexp fixed-base sim61", m61.fixed_ref_us, m61.fixed_opt_us);
  PrintSpeedup("modexp fixed-base sim256", m256.fixed_ref_us,
               m256.fixed_opt_us);
  PrintSpeedup("modexp variable-base sim61", m61.window_ref_us,
               m61.window_opt_us);
  PrintSpeedup("modexp variable-base sim256", m256.window_ref_us,
               m256.window_opt_us);
  ReportPair(report, "modexp_fixed_sim61", m61.fixed_ref_us, m61.fixed_opt_us);
  ReportPair(report, "modexp_fixed_sim256", m256.fixed_ref_us,
             m256.fixed_opt_us);
  ReportPair(report, "modexp_window_sim61", m61.window_ref_us,
             m61.window_opt_us);
  ReportPair(report, "modexp_window_sim256", m256.window_ref_us,
             m256.window_opt_us);

  const SchnorrResult s256 = BenchSchnorr(crypto::SchnorrSim256(), iters);
  PrintSpeedup("schnorr sign sim256", s256.sign_ref_us, s256.sign_opt_us);
  PrintSpeedup("schnorr verify sim256", s256.verify_ref_us,
               s256.verify_opt_us);
  ReportPair(report, "schnorr_sign_sim256", s256.sign_ref_us,
             s256.sign_opt_us);
  ReportPair(report, "schnorr_verify_sim256", s256.verify_ref_us,
             s256.verify_opt_us);

  BenchPrfDrbg(g_selftest ? nullptr : &report, iters * 4);

  // Full probe loop: the end-to-end number the 1.5x target applies to.
  const ProbeLoopResult probe_ref = RunProbeLoop(true, population, days);
  const ProbeLoopResult probe_opt = RunProbeLoop(false, population, days);
  Check(probe_ref.digest == probe_opt.digest,
        "probe observations reference vs optimized");
  Check(probe_ref.probes == probe_opt.probes,
        "probe counts reference vs optimized");
  PrintSpeedup("end-to-end probe", probe_ref.us_per_probe,
               probe_opt.us_per_probe);
  PrintSpeedup("end-to-end full handshake", probe_ref.handshake_us_per_probe,
               probe_opt.handshake_us_per_probe);
  PrintSpeedup("end-to-end resumption", probe_ref.resume_us_per_probe,
               probe_opt.resume_us_per_probe);
  std::printf("  (%llu probes = %llu handshakes + %llu resumptions over %d "
              "days, population %zu, identical observations: %s)\n",
              static_cast<unsigned long long>(probe_ref.probes),
              static_cast<unsigned long long>(probe_ref.handshakes),
              static_cast<unsigned long long>(probe_ref.resumes), days,
              population, probe_ref.digest == probe_opt.digest ? "yes" : "NO");
  ReportPair(report, "probe", probe_ref.us_per_probe, probe_opt.us_per_probe);
  ReportPair(report, "handshake", probe_ref.handshake_us_per_probe,
             probe_opt.handshake_us_per_probe);
  ReportPair(report, "resume", probe_ref.resume_us_per_probe,
             probe_opt.resume_us_per_probe);
  report.Add("probe_count", probe_ref.probes);
  report.Add("handshake_count", probe_ref.handshakes);
  report.Add("resume_count", probe_ref.resumes);
  report.AddString("outputs_identical", g_all_ok ? "yes" : "no");

  crypto::SetReferenceCrypto(false);

  if (g_selftest) {
    std::printf("selftest: %s\n", g_all_ok ? "PASS" : "FAIL");
    return g_all_ok ? 0 : 1;
  }
  const std::string path = report.Write();
  std::printf("\nwrote %s\n", path.c_str());
  return g_all_ok ? 0 : 1;
}
