// Figure 1: Session ID Lifetime — how long session IDs are honoured.
//
// Initial handshake to each trusted domain, resumption at +1s, then every
// five minutes until failure or 24 hours.
#include "common.h"
#include "scanner/experiments.h"
#include "warehouse_support.h"

using namespace tlsharm;
using namespace tlsharm::bench;

int main(int argc, char** argv) {
  WarehouseSession session(argc, argv);
  World world = BuildWorld("Figure 1: Session ID Lifetime");
  const auto result = session.Lifetime(
      "session_id", *world.net, /*day=*/0, /*seed=*/201,
      /*max_delay=*/24 * kHour, /*step=*/5 * kMinute);

  PrintRow("Trusted HTTPS domains (denominator)",
           PaperCountAtScale(433220, world.scale),
           FormatCount(result.trusted_https));
  PrintRow("Indicated support (session ID in ServerHello)",
           PaperCountAtScale(419302, world.scale) + " 97%",
           FormatCount(result.indicated) + " " +
               Pct(static_cast<double>(result.indicated) /
                   result.trusted_https, 0));
  PrintRow("Resumed after 1 second",
           PaperCountAtScale(357536, world.scale) + " 83%",
           FormatCount(result.resumed_1s) + " " +
               Pct(static_cast<double>(result.resumed_1s) /
                   result.trusted_https, 0));

  EmpiricalDistribution lifetimes;
  for (const auto& m : result.lifetimes) {
    lifetimes.Add(static_cast<double>(m.max_delay));
  }
  std::printf("\nCDF of max successful resumption delay"
              " (of domains resuming at 1s):\n");
  PrintRow("< 5 minutes", "61%",
           Pct(lifetimes.CdfAt(5 * kMinute - 1), 0));
  PrintRow("<= 1 hour", "82%", Pct(lifetimes.CdfAt(kHour), 0));
  PrintRow("<= 10 hours (IIS step at 10h)", "~94%",
           Pct(lifetimes.CdfAt(10 * kHour), 0));
  PrintRow(">= 24 hours (86% Google + Facebook CDN)", "0.8%",
           Pct(lifetimes.FractionAtLeast(24 * kHour), 1));

  std::printf("\nFigure 1 series (max delay minutes -> CDF):\n  ");
  for (const SimTime mins : {1, 5, 10, 30, 60, 180, 600, 720, 1440}) {
    std::printf("%lldm:%.3f  ", static_cast<long long>(mins),
                lifetimes.CdfAt(static_cast<double>(mins * kMinute)));
  }
  std::printf("\n");
  return 0;
}
