// Table 1: Support for Forward Secrecy and Resumption.
//
// Ten TLS connections in quick succession to each listed domain, once
// offering only DHE, once only ECDHE, once the default suites (for session
// tickets); counts domains that ever repeated a server key-exchange value /
// STEK identifier, and those that repeated it on every connection.
#include "common.h"
#include "scanner/experiments.h"

using namespace tlsharm;
using namespace tlsharm::bench;

namespace {

void PrintBlock(const char* title, const scanner::SupportCounts& counts,
                double scale, std::uint64_t paper_list,
                std::uint64_t paper_trusted, std::uint64_t paper_support,
                std::uint64_t paper_2x, std::uint64_t paper_all) {
  std::printf("%s\n", title);
  PrintRow("Alexa list domains scanned", PaperCountAtScale(paper_list, scale),
           FormatCount(counts.list_size));
  PrintRow("Browser-trusted TLS domains",
           PaperCountAtScale(paper_trusted, scale),
           FormatCount(counts.trusted) + " (" +
               Pct(static_cast<double>(counts.trusted) / counts.list_size) +
               " of list; paper " +
               Pct(static_cast<double>(paper_trusted) / paper_list) + ")");
  PrintRow("Support (completed handshake / issued ticket)",
           PaperCountAtScale(paper_support, scale),
           FormatCount(counts.supported) + " (" +
               Pct(static_cast<double>(counts.supported) / counts.trusted) +
               " of trusted; paper " +
               Pct(static_cast<double>(paper_support) / paper_trusted) + ")");
  PrintRow(">=2x same server value",
           PaperCountAtScale(paper_2x, scale),
           FormatCount(counts.reuse_twice) + " (" +
               Pct(counts.supported
                       ? static_cast<double>(counts.reuse_twice) /
                             counts.supported
                       : 0) +
               " of supporters; paper " +
               Pct(static_cast<double>(paper_2x) / paper_support) + ")");
  PrintRow("All connections same value",
           PaperCountAtScale(paper_all, scale),
           FormatCount(counts.reuse_all));
  std::printf("\n");
}

}  // namespace

int main() {
  World world = BuildWorld("Table 1: Support for Forward Secrecy and Resumption");
  const int day = 0;

  const auto dhe = scanner::MeasureKexSupport(
      *world.net, day, scanner::CipherSelection::kDheOnly, 10, 101);
  PrintBlock("DHE (paper: 14 Apr 2016 scan)", dhe, world.scale, 957116,
             427313, 252340, 18113, 12461);

  const auto ecdhe = scanner::MeasureKexSupport(
      *world.net, day, scanner::CipherSelection::kEcdheOnly, 10, 102);
  PrintBlock("ECDHE (paper: 15 Apr 2016 scan)", ecdhe, world.scale, 958470,
             438383, 390120, 60370, 41683);

  const auto tickets =
      scanner::MeasureTicketSupport(*world.net, day, 10, 103);
  PrintBlock("Session tickets (paper: 17 Apr 2016 scan)", tickets,
             world.scale, 956094, 435150, 354697, 353124, 334404);
  return 0;
}
