// Warehouse subsystem bench: ingest throughput, storage footprint against
// the text store, and cold vs incremental fold latency. Emits
// BENCH_warehouse.json for CI tracking.
//
// Pipeline measured:
//   1. a seeded daily-scan study recorded to the text store (the baseline
//      format) and directly into the warehouse;
//   2. text -> warehouse ingest (rows/s) plus the size ratio;
//   3. aggregate recovery: full text re-parse vs cold warehouse fold vs
//      checkpoint-resumed fold of only the newest day;
//   4. parity: the fold must equal the live engine, the text round trip
//      must be the identity.
#include <chrono>
#include <filesystem>
#include <sstream>

#include "common.h"
#include "scanner/scan_engine.h"
#include "warehouse/fold.h"
#include "warehouse/import.h"

using namespace tlsharm;
using namespace tlsharm::bench;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

bool FoldMatchesEngine(const scanner::DailyScanResult& folded,
                       const scanner::DailyScanResult& engine) {
  return folded.core_domains == engine.core_domains &&
         folded.core_ever_ticket == engine.core_ever_ticket &&
         folded.core_ever_ecdhe == engine.core_ever_ecdhe &&
         folded.core_ever_dhe_connect == engine.core_ever_dhe_connect &&
         folded.core_any_mechanism == engine.core_any_mechanism &&
         folded.stek_spans.AllSpans() == engine.stek_spans.AllSpans() &&
         folded.ecdhe_spans.AllSpans() == engine.ecdhe_spans.AllSpans() &&
         folded.dhe_spans.AllSpans() == engine.dhe_spans.AllSpans();
}

}  // namespace

int main() {
  World world = BuildWorld("Warehouse: columnar store + incremental fold");
  simnet::Internet& net = *world.net;
  const std::string base =
      (std::filesystem::temp_directory_path() / "tlsharm_bench_warehouse")
          .string();
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);

  JsonReport report("warehouse");
  report.Add("population", static_cast<std::uint64_t>(world.population));
  report.Add("days", world.days);

  // --- 1. record the study once: text sink + warehouse store together ------
  const std::string direct_dir = base + "/direct";
  std::ostringstream text_stream;
  scanner::ObservationWriter sink(text_stream);
  std::string error;
  auto writer = warehouse::WarehouseWriter::Create(direct_dir, &error);
  if (writer == nullptr) {
    std::fprintf(stderr, "warehouse create: %s\n", error.c_str());
    return 1;
  }
  scanner::ScanEngineOptions options;
  options.sink = &sink;
  options.store = writer.get();
  auto scan_start = Clock::now();
  const auto engine = scanner::RunShardedDailyScans(net, world.days, 301,
                                                    options);
  const double scan_ms = MsSince(scan_start);
  if (!writer->ok()) {
    std::fprintf(stderr, "warehouse record: %s\n", writer->error().c_str());
    return 1;
  }
  const std::string text = text_stream.str();
  const std::uint64_t rows = writer->RowsWritten();
  std::printf("study: %llu observations over %d days "
              "(scan+record %.0f ms)\n",
              static_cast<unsigned long long>(rows), world.days, scan_ms);
  report.Add("rows", rows);
  report.Add("scan_record_ms", scan_ms);

  // --- 2. ingest throughput + footprint ------------------------------------
  const std::string import_dir = base + "/imported";
  std::istringstream text_in(text);
  warehouse::ImportStats stats;
  auto ingest_start = Clock::now();
  if (!warehouse::TextToWarehouse(text_in, import_dir, &stats, &error)) {
    std::fprintf(stderr, "ingest: %s\n", error.c_str());
    return 1;
  }
  const double ingest_ms = MsSince(ingest_start);
  const double ingest_rows_per_s =
      ingest_ms > 0 ? 1000.0 * static_cast<double>(stats.rows) / ingest_ms
                    : 0.0;
  std::printf("ingest: text -> warehouse at %.0f rows/s (%.0f ms)\n",
              ingest_rows_per_s, ingest_ms);
  std::printf("footprint: warehouse %llu bytes vs text %zu bytes "
              "(%.1f%% of text)\n",
              static_cast<unsigned long long>(stats.warehouse_bytes),
              text.size(),
              100.0 * static_cast<double>(stats.warehouse_bytes) /
                  static_cast<double>(text.size()));
  report.Add("ingest_ms", ingest_ms);
  report.Add("ingest_rows_per_s", ingest_rows_per_s);
  report.Add("text_bytes", static_cast<std::uint64_t>(text.size()));
  report.Add("warehouse_bytes", stats.warehouse_bytes);
  report.Add("warehouse_over_text_ratio",
             static_cast<double>(stats.warehouse_bytes) /
                 static_cast<double>(text.size()));

  const auto wh = warehouse::Warehouse::Open(import_dir, &error);
  if (!wh.has_value()) {
    std::fprintf(stderr, "open: %s\n", error.c_str());
    return 1;
  }

  // --- 3a. baseline: full text re-parse into the fold -----------------------
  auto reparse_start = Clock::now();
  warehouse::ScanFold text_fold;
  {
    std::istringstream in(text);
    scanner::ObservationReader reader(in);
    int last_day = -1;
    while (const auto obs = reader.Next()) {
      if (obs->day != last_day && last_day >= 0) {
        text_fold.CompleteDay(last_day);
      }
      last_day = obs->day;
      text_fold.Fold(obs->day, obs->observation);
    }
    if (last_day >= 0) text_fold.CompleteDay(last_day);
  }
  const auto text_result = text_fold.Finish(net);
  const double reparse_ms = MsSince(reparse_start);
  std::printf("aggregate recovery: full text re-parse %.0f ms\n", reparse_ms);
  report.Add("text_reparse_ms", reparse_ms);

  // --- 3b. cold warehouse fold ----------------------------------------------
  warehouse::FoldOptions cold;
  cold.use_checkpoints = false;
  scanner::DailyScanResult folded;
  auto cold_start = Clock::now();
  if (!warehouse::FoldDailyScans(*wh, net, cold, &folded, &error)) {
    std::fprintf(stderr, "cold fold: %s\n", error.c_str());
    return 1;
  }
  const double cold_ms = MsSince(cold_start);
  std::printf("aggregate recovery: cold warehouse fold %.0f ms\n", cold_ms);
  report.Add("cold_fold_ms", cold_ms);

  // Untimed pass to lay down the per-day checkpoints 3c resumes from.
  warehouse::FoldOptions checkpointing;
  checkpointing.use_checkpoints = false;
  checkpointing.write_checkpoints = true;
  scanner::DailyScanResult ignored;
  if (!warehouse::FoldDailyScans(*wh, net, checkpointing, &ignored, &error)) {
    std::fprintf(stderr, "checkpoint fold: %s\n", error.c_str());
    return 1;
  }

  // --- 3c. incremental: resume from the last checkpoint, fold one new day ---
  // Drop the final checkpoint so the resumed fold has exactly one day of
  // new observations to read — the steady-state "a new scan day landed"
  // case.
  std::filesystem::remove(import_dir + "/" +
                          warehouse::CheckpointFileName(world.days - 1));
  warehouse::FoldOptions warm;
  warm.use_checkpoints = true;
  scanner::DailyScanResult incremental;
  warehouse::FoldStats warm_stats;
  auto warm_start = Clock::now();
  if (!warehouse::FoldDailyScans(*wh, net, warm, &incremental, &error,
                                 &warm_stats)) {
    std::fprintf(stderr, "incremental fold: %s\n", error.c_str());
    return 1;
  }
  const double warm_ms = MsSince(warm_start);
  std::printf("aggregate recovery: incremental fold %.0f ms "
              "(%d of %d days read, resumed from day %d)\n",
              warm_ms, warm_stats.days_folded, warm_stats.days_total,
              warm_stats.resumed_from);
  report.Add("incremental_fold_ms", warm_ms);
  report.Add("incremental_days_folded", warm_stats.days_folded);
  if (reparse_ms > 0) {
    report.Add("incremental_speedup_vs_text", reparse_ms / warm_ms);
  }

  // --- 4. parity -------------------------------------------------------------
  const bool fold_parity = FoldMatchesEngine(folded, engine) &&
                           FoldMatchesEngine(incremental, engine) &&
                           FoldMatchesEngine(text_result, engine);
  std::ostringstream text_out;
  bool roundtrip = warehouse::WarehouseToText(*wh, text_out, nullptr, &error);
  roundtrip = roundtrip && text_out.str() == text;
  std::printf("parity: fold==engine %s, text round trip %s\n",
              fold_parity ? "OK" : "FAIL", roundtrip ? "OK" : "FAIL");
  report.Add("fold_matches_engine", fold_parity ? 1 : 0);
  report.Add("text_roundtrip_identity", roundtrip ? 1 : 0);

  const std::string json = report.Write();
  if (!json.empty()) std::printf("\nwrote %s\n", json.c_str());
  std::filesystem::remove_all(base);
  return fold_parity && roundtrip ? 0 : 1;
}
