// §2.4/§8.1 extension: TLS 1.3 draft-15 PSK resumption windows.
//
// The paper warns that 7-day PSK lifetimes recreate the TLS 1.2 exposure it
// measured. This bench makes that executable: for each (identity kind,
// mode) combination it records 0-RTT and resumed traffic to a server, then
// compromises the sealing key at +6 days and reports what decrypts.
#include "common.h"
#include "crypto/kex.h"
#include "tls13/psk.h"

using namespace tlsharm;
using namespace tlsharm::bench;

namespace {

struct Scenario {
  const char* name;
  tls13::PskMode mode;
  server::StekRotation rotation;
  SimTime rotation_interval;
};

}  // namespace

int main() {
  std::printf("== TLS 1.3 PSK vulnerability windows (paper §2.4 / §8.1) ==\n");
  std::printf("draft-15 PSK lifetime cap: 7 days\n\n");
  crypto::Drbg drbg(ToBytes("tls13 bench"));

  const Scenario scenarios[] = {
      {"psk_ke,  static sealing key", tls13::PskMode::kPskKe,
       server::StekRotation::kStatic, 0},
      {"psk_dhe_ke, static sealing key", tls13::PskMode::kPskDheKe,
       server::StekRotation::kStatic, 0},
      {"psk_ke,  daily-rotated key", tls13::PskMode::kPskKe,
       server::StekRotation::kInterval, kDay},
  };

  std::printf("%-34s %-12s %-14s %s\n", "scenario", "0-RTT",
              "resumed data", "comment");
  for (const Scenario& scenario : scenarios) {
    tls13::Tls13ServerConfig config;
    config.stek.rotation = scenario.rotation;
    config.stek.rotation_interval = scenario.rotation_interval;
    tls13::Tls13Server server(config, ToBytes(scenario.name));

    // Day 0: initial connection yields a ticket; client resumes with 0-RTT.
    const Bytes master(48, 0x42);
    const Bytes transcript(32, 0x01);
    const Bytes rm = tls13::DeriveResumptionMasterSecret(master, transcript);
    const tls13::Tls13Ticket ticket = server.IssueTicket(rm, 0);
    const Bytes psk = tls13::DerivePsk(rm, ticket.ticket_nonce);
    const Bytes ch_hash(32, 0x02);
    const Bytes early_secret = tls13::DeriveClientEarlyTrafficSecret(
        tls13::DeriveEarlySecret(psk), ch_hash);
    const Bytes captured_0rtt = tls13::ProtectEarlyData(
        early_secret, ToBytes("POST /buy card=4111..."), drbg);

    const auto& group = crypto::GetKexGroup(config.dhe_group);
    const auto client_kex = group.GenerateKeyPair(drbg);
    const auto outcome = server.Resume(
        ticket, scenario.mode, ch_hash,
        scenario.mode == tls13::PskMode::kPskDheKe ? client_kex.public_value
                                                   : Bytes{},
        {}, kHour, drbg);

    // Day 6: the attacker obtains the sealing key.
    const tls::Stek stolen = server.StealSealingKey(6 * kDay);
    const auto opened = tls13::OpenPskState(stolen, ticket.identity);
    bool zero_rtt_decrypted = false;
    bool resumed_decrypted = false;
    if (opened) {
      const Bytes attacker_psk =
          tls13::DerivePsk(opened->resumption_master, opened->ticket_nonce);
      zero_rtt_decrypted =
          tls13::UnprotectEarlyData(
              tls13::DeriveClientEarlyTrafficSecret(
                  tls13::DeriveEarlySecret(attacker_psk), ch_hash),
              captured_0rtt)
              .has_value();
      // psk_ke traffic derives from the PSK alone.
      resumed_decrypted =
          outcome.accepted &&
          outcome.traffic_secret ==
              tls13::DeriveResumedTrafficSecret(attacker_psk, {}, ch_hash);
    }
    const char* comment =
        scenario.rotation == server::StekRotation::kStatic
            ? (scenario.mode == tls13::PskMode::kPskKe
                   ? "full TLS 1.2-ticket-style exposure"
                   : "DHE protects bulk data; 0-RTT still exposed")
            : "rotation closed the window before the theft";
    std::printf("%-34s %-12s %-14s %s\n", scenario.name,
                zero_rtt_decrypted ? "DECRYPTED" : "safe",
                resumed_decrypted ? "DECRYPTED" : "safe", comment);
  }
  std::printf("\npaper §8.1: \"PSKs honored for 7 days ... require TLS"
              " secrets to exist for the same\namount of time and may be a"
              " significant risk for high-value domains.\"\n");
  return 0;
}
