// Table 7: Largest Diffie-Hellman Service Groups — domains that ever
// presented the same (EC)DHE key-exchange value (§5.3).
#include "common.h"
#include "scanner/experiments.h"

using namespace tlsharm;
using namespace tlsharm::bench;

int main() {
  World world = BuildWorld("Table 7: Largest Diffie-Hellman Service Groups");
  const auto result = scanner::MeasureKexGroups(
      *world.net, /*day=*/0, /*seed=*/701, /*connections=*/10,
      /*window=*/5 * kHour);

  std::size_t singles = 0;
  for (const auto& group : result.groups) singles += group.size() == 1;

  PrintRow("participating domains", "(DHE/ECDHE completing)",
           FormatCount(result.participants));
  PrintRow("Diffie-Hellman service groups",
           PaperCountAtScale(421492, world.scale),
           FormatCount(result.groups.size()));
  PrintRow("single-domain groups", "99%",
           Pct(result.groups.empty()
                   ? 0
                   : static_cast<double>(singles) / result.groups.size(), 0));

  std::printf("\nTen largest Diffie-Hellman service groups:\n");
  TextTable table({"Operator", "# domains", "paper row"});
  const char* paper_rows[] = {
      "SquareSpace: 1,627",     "LiveJournal: 1,330",
      "Jimdo #1: 179",          "Jimdo #2: 178",
      "Distil Networks: 174",   "Atypon: 167",
      "Affinity Internet: 146", "Line Corp.: 114",
      "Digital Insight: 98",    "EdgeCast CDN: 75"};
  for (std::size_t i = 0; i < 10 && i < result.groups.size(); ++i) {
    const auto& group = result.groups[i];
    if (group.size() < 2) break;
    table.AddRow({world.net->GetDomain(group.front()).operator_name,
                  FormatCount(group.size()), paper_rows[i]});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(paper counts are at Top-1M scale; multiply ours by %.1f to"
              " compare)\n", 1.0 / world.scale);
  return 0;
}
