// Figure 2: Session Ticket Lifetime — advertised hint vs honoured window.
//
// Same protocol as Figure 1 but offering the original ticket on every
// attempt (even when the server reissues).
#include "common.h"
#include "scanner/experiments.h"

using namespace tlsharm;
using namespace tlsharm::bench;

int main() {
  World world = BuildWorld("Figure 2: Session Ticket Lifetime");
  const auto result = scanner::MeasureTicketLifetime(
      *world.net, /*day=*/0, /*seed=*/202, /*max_delay=*/24 * kHour,
      /*step=*/5 * kMinute);

  PrintRow("Trusted HTTPS domains (denominator)",
           PaperCountAtScale(461475, world.scale),
           FormatCount(result.trusted_https));
  PrintRow("Issued a session ticket",
           PaperCountAtScale(366178, world.scale) + " 79%",
           FormatCount(result.indicated) + " " +
               Pct(static_cast<double>(result.indicated) /
                   result.trusted_https, 0));
  PrintRow("Resumed after 1 second",
           PaperCountAtScale(351603, world.scale) + " 76%",
           FormatCount(result.resumed_1s) + " " +
               Pct(static_cast<double>(result.resumed_1s) /
                   result.trusted_https, 0));

  EmpiricalDistribution honoured;
  EmpiricalDistribution hints;
  std::size_t unspecified_hint = 0;
  std::size_t eighteen_hour = 0;
  std::size_t day_plus = 0;
  for (const auto& m : result.lifetimes) {
    honoured.Add(static_cast<double>(m.max_delay));
    if (m.lifetime_hint == 0) {
      ++unspecified_hint;
    } else {
      hints.Add(static_cast<double>(m.lifetime_hint));
    }
    if (m.max_delay >= 17 * kHour + 30 * kMinute &&
        m.max_delay <= 18 * kHour + 30 * kMinute) {
      ++eighteen_hour;
    }
    if (m.max_delay >= 24 * kHour) ++day_plus;
  }

  std::printf("\nCDF of max successful ticket resumption delay:\n");
  PrintRow("< 5 minutes", "67%", Pct(honoured.CdfAt(5 * kMinute - 1), 0));
  PrintRow("<= 1 hour", "76%", Pct(honoured.CdfAt(kHour), 0));
  PrintRow("resumed ~18 hours (CloudFlare step)",
           PaperCountAtScale(54522, world.scale),
           FormatCount(eighteen_hour));
  PrintRow("resumed >= 24 hours (95% Google, 28h hint)",
           PaperCountAtScale(8969, world.scale), FormatCount(day_plus));
  PrintRow("lifetime hint unspecified",
           PaperCountAtScale(14663, world.scale),
           FormatCount(unspecified_hint));
  if (!hints.Empty()) {
    PrintRow("max advertised hint (fantabob*: 90 days)", "7,776,000s",
             FormatDouble(hints.Max(), 0) + "s");
  }

  std::printf("\nFigure 2 series (max delay minutes -> CDF):\n  ");
  for (const SimTime mins : {1, 3, 5, 10, 30, 60, 180, 600, 1080, 1440}) {
    std::printf("%lldm:%.3f  ", static_cast<long long>(mins),
                honoured.CdfAt(static_cast<double>(mins * kMinute)));
  }
  std::printf("\n");
  return 0;
}
