// Figures 6 & 7: sharing × longevity. Each service group is sized by its
// domain count and coloured by the group's median secret longevity; we
// print the treemap's underlying rows (size, median longevity) for the
// largest groups of each mechanism.
#include <algorithm>
#include <functional>

#include "common.h"
#include "scanner/experiments.h"

using namespace tlsharm;
using namespace tlsharm::bench;

namespace {

// Prints the largest groups with their median per-domain longevity drawn
// from `spans` (in days) or from a per-domain seconds metric.
void PrintTreemap(const char* title, simnet::Internet& net,
                  const std::vector<std::vector<simnet::DomainId>>& groups,
                  const std::function<double(simnet::DomainId)>& longevity,
                  const char* unit, double red_threshold) {
  std::printf("%s\n", title);
  TextTable table({"Operator", "# domains", std::string("median ") + unit,
                   "red (>=30d)?"});
  std::size_t shown = 0;
  for (const auto& group : groups) {
    if (group.size() < 2 || shown >= 12) break;
    EmpiricalDistribution dist;
    for (const auto id : group) {
      const double v = longevity(id);
      if (v > 0) dist.Add(v);
    }
    const double median = dist.Empty() ? 0 : dist.Median();
    table.AddRow({net.GetDomain(group.front()).operator_name,
                  FormatCount(group.size()), FormatDouble(median, 1),
                  median >= red_threshold ? "RED" : ""});
    ++shown;
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main() {
  World world = BuildWorld("Figures 6-7: secret sharing x longevity treemaps");
  simnet::Internet& net = *world.net;

  // Longevity inputs: spans from daily scans; cache windows from the
  // session-ID lifetime experiment.
  const auto scan = scanner::RunDailyScans(net, world.days, 301);
  const auto cache_result = scanner::MeasureSessionIdLifetime(
      net, 0, 601, 24 * kHour, 15 * kMinute);
  std::vector<double> cache_minutes(net.DomainCount(), 0);
  for (const auto& m : cache_result.lifetimes) {
    cache_minutes[m.domain] = static_cast<double>(m.max_delay) / kMinute;
  }

  // --- Figure 6: STEK groups coloured by median STEK span --------------------
  const auto stek_groups =
      scanner::MeasureStekGroups(net, 0, 602, 6, 6 * kHour);
  PrintTreemap(
      "Figure 6: STEK service groups (size x median STEK span)", net,
      stek_groups.groups,
      [&](simnet::DomainId id) {
        return static_cast<double>(scan.stek_spans.MaxSpanDays(id));
      },
      "span (days)", 30.0);
  std::printf("  paper: CloudFlare + Google (20%% of Top-1M HTTPS) rotate"
              " < 24h; TMall + Fastly (1,208 domains)\n  never rotated;"
              " Jack Henry's 79 banks used one STEK 59 days then rotated"
              " to another shared key.\n\n");

  // --- Figure 7 left: session-cache groups coloured by honoured window -------
  const auto cache_groups = scanner::MeasureSessionCacheGroups(net, 0, 603);
  PrintTreemap(
      "Figure 7 (left): session-cache groups (size x median honoured window)",
      net, cache_groups.groups,
      [&](simnet::DomainId id) { return cache_minutes[id]; },
      "window (min)", 30.0 * 24 * 60);
  std::printf("  paper: ten largest cache groups = 15%% of Top-1M domains,"
              " median windows 5 and 1,440 minutes;\n  the five longest-lived"
              " all Blogspot (4.5h-24h).\n\n");

  // --- Figure 7 right: DH groups coloured by median value span ---------------
  const auto kex_groups = scanner::MeasureKexGroups(net, 0, 604, 6,
                                                    5 * kHour);
  PrintTreemap(
      "Figure 7 (right): Diffie-Hellman groups (size x median value span)",
      net, kex_groups.groups,
      [&](simnet::DomainId id) {
        return static_cast<double>(std::max(
            scan.dhe_spans.MaxSpanDays(id), scan.ecdhe_spans.MaxSpanDays(id)));
      },
      "span (days)", 30.0);
  std::printf("  paper: Affinity Internet shared one DH value across 91"
              " domains for 62 days; Jimdo one value\n  19 days x 64 domains"
              " and another 17 days x 60 domains.\n");
  return 0;
}
