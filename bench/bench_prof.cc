// bench_prof: what the wall-clock performance plane itself costs, and
// where a scan's wall time actually goes.
//
// Four measurements, all landing in BENCH_prof.json:
//
//   1. Disabled-path span cost — the price every instrumented call site
//      pays when TLSHARM_PROF is off (one relaxed atomic load + branch).
//      This is the number the "profiling is free when off" claim rests on;
//      scripts/check.sh budgets its whole-scan projection (warn > 1%,
//      fail > 5%).
//   2. Enabled-path span cost — clock reads + thread-local buffer write.
//   3. Off-vs-on scan overhead — the same daily-scan study interleaved
//      with profiling off and on (min-of-reps), cross-checking that the
//      merged metrics snapshot is byte-identical either way (the
//      two-plane isolation contract).
//   4. The hotspot table from the profiled run: top spans by self time
//      plus the attribution share — how much of root wall time named
//      spans claim. The ≥90% gate makes "we know where the time goes"
//      a tested property, not a hope.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "common.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/prof_report.h"
#include "scanner/scan_engine.h"

using namespace tlsharm;

namespace {

const obs::ProfSite kBenchSite("bench.prof.site");

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Cost of one ProfScope at an instrumented site, in ns, averaged over
// `iters` constructions in a tight loop. Valid for both the disabled path
// (atomic load + branch) and the enabled path (two clock reads + buffer
// write) — whichever state the plane is in when called.
double SpanCostNs(std::uint64_t iters) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    obs::ProfScope span(kBenchSite);
  }
  return MsSince(start) * 1e6 / static_cast<double>(iters);
}

struct ScanRun {
  double ms = 0;
  std::uint64_t probes = 0;
  std::string metrics_json;
};

ScanRun RunScan(const bench::World& world, int threads) {
  ScanRun run;
  auto net = std::make_unique<simnet::Internet>(
      simnet::PaperPopulationSpec(world.population), bench::StudySeed());
  obs::MetricsRegistry metrics;
  scanner::ScanEngineOptions options;
  options.threads = threads;
  options.metrics = &metrics;
  const auto start = std::chrono::steady_clock::now();
  const scanner::DailyScanResult result = scanner::RunShardedDailyScans(
      *net, world.days, bench::StudySeed() + 501, options);
  run.ms = MsSince(start);
  for (const auto& day : result.loss) run.probes += day.scheduled;
  run.metrics_json = metrics.SnapshotJson();
  return run;
}

int Reps() {
  if (const char* env = std::getenv("TLSHARM_BENCH_REPS")) {
    const int reps = std::atoi(env);
    if (reps >= 1 && reps <= 20) return reps;
  }
  return 3;
}

}  // namespace

int main() {
  bench::World world = bench::BuildWorld("performance-plane overhead");
  world.net.reset();  // every run builds its own world
  int threads = scanner::ScanThreadsFromEnv();
  if (threads <= 1) threads = 8;
  const int reps = Reps();

  // Span-site micro costs. The disabled path is what every site in the
  // scan/crypto/durable hot paths pays in a production (unprofiled) run.
  obs::SetProfilingEnabled(false);
  const double disabled_ns = SpanCostNs(20'000'000);
  obs::SetProfilingEnabled(true);
  obs::SetProfTraceEnabled(false);
  obs::ProfReset();
  const double enabled_ns = SpanCostNs(2'000'000);
  obs::SetProfilingEnabled(false);
  obs::ProfReset();

  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.2f ns", disabled_ns);
  bench::PrintRow("span site cost, profiling off", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.1f ns", enabled_ns);
  bench::PrintRow("span site cost, profiling on", "-", buf);

  // Off-vs-on scan overhead, interleaved min-of-reps (same discipline as
  // bench_recovery: the minimum is the run least disturbed by scheduling
  // noise, which matters for a single-digit-percent effect).
  ScanRun off, on;
  obs::ProfSnapshot snap;
  bool metrics_match = true;
  for (int rep = 0; rep < reps; ++rep) {
    obs::SetProfilingEnabled(false);
    const ScanRun off_rep = RunScan(world, threads);
    if (rep == 0 || off_rep.ms < off.ms) off = off_rep;

    obs::SetProfilingEnabled(true);
    obs::ProfReset();
    const ScanRun on_rep = RunScan(world, threads);
    obs::SetProfilingEnabled(false);
    if (rep == 0 || on_rep.ms < on.ms) on = on_rep;
    if (rep == 0) snap = obs::ProfSnapshotNow();
    metrics_match = metrics_match && off_rep.metrics_json == on_rep.metrics_json;
  }

  const double enabled_overhead_pct =
      off.ms > 0 ? (on.ms - off.ms) * 100.0 / off.ms : 0;
  // Projected cost of the instrumentation when profiling is OFF: every
  // span the profiled run recorded was, in the production configuration, a
  // disabled-path check. (Direct measurement is impossible — the sites are
  // compiled in — so the projection is the honest number: span volume from
  // a real run times the measured per-site cost.)
  std::uint64_t spans_recorded = 0;
  for (const auto& s : snap.spans) spans_recorded += s.count;
  const double disabled_overhead_pct =
      off.ms > 0 ? static_cast<double>(spans_recorded) * disabled_ns /
                       (off.ms * 1e6) * 100.0
                 : 0;
  const double spans_per_probe =
      off.probes > 0
          ? static_cast<double>(spans_recorded) / static_cast<double>(off.probes)
          : 0;
  const double attributed_pct = obs::ProfAttributedPct(snap);
  const bool attribution_ok = attributed_pct >= 90.0;

  std::printf("scan: %llu probes over %d days, %d threads, %d reps\n",
              static_cast<unsigned long long>(off.probes), world.days,
              threads, reps);
  std::snprintf(buf, sizeof(buf), "%.1f ms", off.ms);
  bench::PrintRow("scan wall time, profiling off", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.1f ms", on.ms);
  bench::PrintRow("scan wall time, profiling on", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.2f%%", enabled_overhead_pct);
  bench::PrintRow("enabled-profiling overhead", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.1f (%llu spans)", spans_per_probe,
                static_cast<unsigned long long>(spans_recorded));
  bench::PrintRow("spans per probe (profiled run)", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.4f%%", disabled_overhead_pct);
  bench::PrintRow("disabled-path overhead (projected)", "<1%", buf);
  bench::PrintRow("metrics identical off vs on", "yes",
                  metrics_match ? "yes" : "NO");
  std::snprintf(buf, sizeof(buf), "%.1f%%", attributed_pct);
  bench::PrintRow("root wall time attributed to spans", ">=90%", buf);

  std::printf("\n%s", obs::RenderProfReport(snap).c_str());

  bench::JsonReport report("prof");
  report.Add("population", static_cast<std::uint64_t>(world.population));
  report.Add("days", world.days);
  report.Add("threads", threads);
  report.Add("probes", off.probes);
  report.Add("disabled_span_ns", disabled_ns);
  report.Add("enabled_span_ns", enabled_ns);
  report.Add("scan_off_ms", off.ms);
  report.Add("scan_on_ms", on.ms);
  report.Add("enabled_overhead_pct", enabled_overhead_pct);
  report.Add("spans_recorded", spans_recorded);
  report.Add("spans_per_probe", spans_per_probe);
  report.Add("disabled_overhead_pct", disabled_overhead_pct);
  report.Add("attributed_pct", attributed_pct);
  report.AddString("attribution_ok", attribution_ok ? "yes" : "no");
  report.AddString("metrics_deterministic", metrics_match ? "yes" : "no");
  report.AddRaw("hotspots", obs::RenderHotspotJson(snap, 12));
  const std::string path = report.Write();
  std::printf("\nwrote %s\n", path.c_str());
  return metrics_match && attribution_ok ? 0 : 1;
}
