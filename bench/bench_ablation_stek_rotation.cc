// Ablation: STEK rotation interval vs. retrospective decryption exposure.
//
// §8.2's first recommendation is "rotate STEKs frequently". This bench
// quantifies the knob: record one connection per hour for 28 days against
// servers differing only in rotation policy, steal each server's current
// key(s) once at the end, and count how much recorded traffic decrypts.
// Resumption performance is identical across rows — rotation is free.
#include <cstdio>
#include <vector>

#include "attack/decrypt.h"
#include "common.h"
#include "crypto/drbg.h"
#include "pki/ca.h"
#include "server/terminator.h"
#include "tls/client.h"

using namespace tlsharm;

namespace {

struct Policy {
  const char* name;
  server::StekPolicy stek;
};

}  // namespace

int main() {
  std::printf("== Ablation: STEK rotation interval vs. exposure ==\n");
  std::printf("28 days of hourly recorded connections; one key theft at the"
              " end (+ acceptance-window keys)\n\n");

  crypto::Drbg drbg(ToBytes("ablation"));
  pki::CertificateAuthority root("Root", pki::SignatureScheme::kSchnorrSim61,
                                 drbg);
  pki::CertificateAuthority ca("CA", pki::SignatureScheme::kSchnorrSim61,
                               drbg);
  const pki::CertificateChain chain = {
      root.IssueCaCertificate(ca, 0, 3650 * kDay, drbg)};

  const Policy policies[] = {
      {"static (never rotated)", {server::StekRotation::kStatic, 0, 0}},
      {"weekly rotation", {server::StekRotation::kInterval, 7 * kDay, 0}},
      {"daily rotation", {server::StekRotation::kInterval, kDay, 0}},
      {"14h roll + 14h acceptance (Google)",
       {server::StekRotation::kInterval, 14 * kHour, 14 * kHour}},
      {"hourly rotation", {server::StekRotation::kInterval, kHour, 0}},
  };

  const int days = 28;
  std::printf("%-38s %-22s %s\n", "policy", "decryptable connections",
              "exposure window");
  for (const Policy& policy : policies) {
    server::ServerConfig config;
    config.stek = policy.stek;
    config.tickets.acceptance_window = 28 * kHour;
    server::SslTerminator term("ablation", config,
                               StableHash64(policy.name));
    server::Credential cred = server::MakeCredential(
        ca, {"site.example"}, pki::SignatureScheme::kSchnorrSim61, 0,
        3650 * kDay, chain, drbg);
    term.MapDomain("site.example", term.AddCredential(std::move(cred)));

    crypto::Drbg client_drbg(ToBytes("client"));
    std::vector<attack::ParsedCapture> tape;
    for (int hour = 0; hour < days * 24; ++hour) {
      const SimTime when = hour * kHour;
      auto conn = term.NewConnection(when);
      attack::PassiveCapture capture;
      tls::TappedConnection tapped(*conn, capture);
      tls::ClientConfig client_config;
      client_config.server_name = "site.example";
      tls::TlsClient client(client_config);
      const auto hs = client.Handshake(tapped, when, client_drbg);
      if (hs.ok) {
        tls::RecordChannel channel(hs.keys, tls::Direction::kClientToServer);
        (void)tls::TlsClient::Roundtrip(tapped, hs, channel,
                                        ToBytes("GET /private"), client_drbg);
      }
      tape.push_back(attack::ParseCapture(capture.Log()));
    }

    // Theft at the end of day 28: every currently-acceptable key leaks
    // (the realistic memory-scrape outcome).
    const SimTime theft = days * kDay;
    std::vector<attack::StekDecryptor> decryptors;
    for (const tls::Stek* stek : term.Steks().AcceptableSteks(theft)) {
      decryptors.emplace_back(config.tickets.codec, *stek);
    }
    int decrypted = 0;
    for (const auto& capture : tape) {
      for (const auto& decryptor : decryptors) {
        if (decryptor.Decrypt(capture).ok) {
          ++decrypted;
          break;
        }
      }
    }
    const double fraction =
        static_cast<double>(decrypted) / static_cast<double>(tape.size());
    std::printf("%-38s %4d / %zu  (%5.1f%%)     ~%s\n", policy.name,
                decrypted, tape.size(), fraction * 100.0,
                FormatDuration(static_cast<SimTime>(
                                   fraction * days * kDay))
                    .c_str());
  }
  std::printf("\nEvery row has identical handshake/resumption performance —"
              " the exposure is pure\nconfiguration debt, which is the"
              " paper's §8 argument.\n");
  return 0;
}
