// §7.2 Target analysis: what a nation-state attacker gains from one
// provider's STEK — measured against the simulated Google and Yandex, and
// demonstrated end-to-end with a real capture-then-decrypt.
#include <set>
#include <string>

#include "attack/decrypt.h"
#include "common.h"
#include "scanner/experiments.h"

using namespace tlsharm;
using namespace tlsharm::bench;

int main() {
  World world = BuildWorld("Section 7: nation-state target analysis");
  simnet::Internet& net = *world.net;
  scanner::Prober prober(net, 701);

  // --- Google STEK roll cadence ------------------------------------------------
  const auto google = net.FindDomain("google.com");
  if (!google) {
    std::printf("google.com missing from world\n");
    return 1;
  }
  std::set<scanner::SecretId> steks_48h;
  scanner::SecretId prev = scanner::kNoSecret;
  SimTime first_change = 0;
  for (SimTime t = 0; t <= 48 * kHour; t += kHour) {
    const auto probe = prober.Probe(*google, t);
    if (!probe.observation.ticket_issued) continue;
    if (prev != scanner::kNoSecret && probe.observation.stek_id != prev &&
        first_change == 0) {
      first_change = t;
    }
    prev = probe.observation.stek_id;
    steks_48h.insert(probe.observation.stek_id);
  }
  PrintRow("Google distinct issuing STEKs over 48h", "~4 (14h roll)",
           FormatCount(steks_48h.size()));
  PrintRow("first STEK rollover observed at", "~14h",
           FormatDuration(first_change));

  // Ticket acceptance overlap: resume with a fresh ticket at +20h and +30h.
  scanner::ProbeOptions options;
  options.want_full_result = true;
  const auto initial = prober.Probe(*google, 0, options);
  const bool at_20h = prober.TryResumeTicket(initial.session, *google,
                                             20 * kHour);
  const bool at_30h = prober.TryResumeTicket(initial.session, *google,
                                             30 * kHour);
  PrintRow("Google ticket accepted at +20h (28h window)", "yes",
           at_20h ? "yes" : "no");
  PrintRow("Google ticket accepted at +30h", "no", at_30h ? "yes" : "no");

  // --- Scope of one Google STEK --------------------------------------------------
  const auto stek_groups = scanner::MeasureStekGroups(net, 0, 702, 4,
                                                      2 * kHour);
  std::size_t google_group = 0;
  for (const auto& group : stek_groups.groups) {
    const auto& op = net.GetDomain(group.front()).operator_name;
    if (op.find("google") != std::string::npos ||
        op.find("blogspot") != std::string::npos) {
      google_group = group.size();
      break;
    }
  }
  PrintRow("domains sharing Google's STEK",
           PaperCountAtScale(8973, world.scale), FormatCount(google_group));

  // --- MX records ------------------------------------------------------------------
  std::size_t mx_google = 0, listed = 0;
  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    if (!net.InTopListOnDay(id, 0)) continue;
    ++listed;
    mx_google += net.MxPointsAtGoogle(id);
  }
  PrintRow("Top-N domains with MX at Google", "9.1%",
           Pct(static_cast<double>(mx_google) / listed, 1));

  // --- Yandex: a static STEK since before the study ----------------------------
  const auto yandex = net.FindDomain("yandex.ru");
  if (yandex) {
    std::set<scanner::SecretId> yandex_steks;
    for (int day = 0; day < world.days; ++day) {
      const auto probe = prober.Probe(*yandex, day * kDay + kHour);
      if (probe.observation.ticket_issued) {
        yandex_steks.insert(probe.observation.stek_id);
      }
    }
    PrintRow("Yandex distinct STEKs over the whole study", "1 (static)",
             FormatCount(yandex_steks.size()));
  }

  // --- End-to-end: steal the Google-pool STEK, decrypt recorded traffic --------
  std::printf("\nDecryption demonstration (passive capture + STEK theft):\n");
  const auto tid = net.EndpointFor(*google, 10 * kHour);
  auto conn = net.Connect(*google, 10 * kHour);
  attack::PassiveCapture capture;
  tls::TappedConnection tapped(*conn, capture);
  crypto::Drbg client_drbg(ToBytes("victim browser"));
  tls::ClientConfig client_config;
  client_config.server_name = "google.com";
  tls::TlsClient victim(client_config);
  const auto hs = victim.Handshake(tapped, 10 * kHour, client_drbg);
  if (hs.ok) {
    tls::RecordChannel channel(hs.keys, tls::Direction::kClientToServer);
    (void)tls::TlsClient::Roundtrip(tapped, hs, channel,
                                    ToBytes("GET /search?q=dissident+news"),
                                    client_drbg);
  }
  const auto parsed = attack::ParseCapture(capture.Log());
  // Hours later: exfiltrate the then-current STEK (still inside the 14h
  // issuing epoch of the captured ticket).
  auto& terminator = net.Terminator(tid);
  const tls::Stek stolen = terminator.Steks().StealCurrentKey(12 * kHour);
  const attack::StekDecryptor decryptor(terminator.Config().tickets.codec,
                                        stolen);
  const auto decrypted = decryptor.Decrypt(parsed);
  PrintRow("captured connection decrypted with stolen STEK", "(attack works)",
           decrypted.ok
               ? "yes"
               : (std::string("no: ") + attack::ToString(decrypted.failure)));
  if (decrypted.ok && !decrypted.client_plaintext.empty()) {
    std::printf("  recovered request: %s\n",
                ToString(decrypted.client_plaintext[0]).c_str());
  }
  return 0;
}
