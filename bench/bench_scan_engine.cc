// bench_scan_engine: daily-scan throughput, serial vs sharded.
//
// Runs the full daily-scan campaign twice on identically constructed
// worlds — once at one thread (the serial scanner) and once at
// TLSHARM_THREADS workers (default 8) — reports the speedup, and
// cross-checks that the two runs produced the same aggregates (the
// engine's determinism contract; the byte-level version is enforced by
// ParallelDeterminismTest). Results land in BENCH_scan.json.
#include <chrono>
#include <memory>
#include <thread>

#include "common.h"
#include "obs/metrics.h"
#include "scanner/scan_engine.h"

using namespace tlsharm;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

scanner::DailyScanResult RunOnce(bench::World& world, int threads,
                                 double& elapsed_ms,
                                 obs::MetricsRegistry& metrics) {
  scanner::ScanEngineOptions options;
  options.threads = threads;
  options.metrics = &metrics;
  const auto start = std::chrono::steady_clock::now();
  scanner::DailyScanResult result = scanner::RunShardedDailyScans(
      *world.net, world.days, bench::StudySeed() + 301, options);
  elapsed_ms = MsSince(start);
  return result;
}

}  // namespace

int main() {
  bench::World world = bench::BuildWorld("scan engine throughput");
  int threads = scanner::ScanThreadsFromEnv();
  if (threads <= 1) threads = 8;

  double serial_ms = 0;
  obs::MetricsRegistry serial_metrics;
  const scanner::DailyScanResult serial =
      RunOnce(world, 1, serial_ms, serial_metrics);

  // Scanning mutates server state; the parallel run needs a fresh,
  // identically constructed world.
  world.net = std::make_unique<simnet::Internet>(
      simnet::PaperPopulationSpec(world.population), bench::StudySeed());
  double parallel_ms = 0;
  obs::MetricsRegistry parallel_metrics;
  const scanner::DailyScanResult parallel =
      RunOnce(world, threads, parallel_ms, parallel_metrics);
  // The telemetry shares the scan's determinism contract: the merged
  // snapshot must not depend on the thread count.
  const std::string metrics_json = parallel_metrics.SnapshotJson();
  const bool metrics_match = serial_metrics.SnapshotJson() == metrics_json;

  std::uint64_t probes = 0;
  bool loss_matches = serial.loss.size() == parallel.loss.size();
  for (std::size_t day = 0; day < serial.loss.size(); ++day) {
    probes += serial.loss[day].scheduled;
    loss_matches = loss_matches &&
                   serial.loss[day].scheduled == parallel.loss[day].scheduled &&
                   serial.loss[day].lost == parallel.loss[day].lost;
  }
  const bool matches =
      loss_matches && metrics_match &&
      serial.core_domains == parallel.core_domains &&
      serial.core_ever_ticket == parallel.core_ever_ticket &&
      serial.core_ever_ecdhe == parallel.core_ever_ecdhe &&
      serial.core_ever_dhe_connect == parallel.core_ever_dhe_connect;
  const double speedup = parallel_ms > 0 ? serial_ms / parallel_ms : 0;

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("daily scans: %llu probes over %d days (%u hardware threads)\n",
              static_cast<unsigned long long>(probes), world.days, cores);
  if (cores < 2) {
    std::printf("NOTE: single-core machine — the sharded run can only show "
                "overhead here,\nnot speedup; the speedup field scales with "
                "available cores.\n");
  }
  bench::PrintRow("serial (1 thread)",
                  "-", std::to_string(static_cast<long long>(serial_ms)) + " ms");
  bench::PrintRow("sharded (" + std::to_string(threads) + " threads)",
                  "-", std::to_string(static_cast<long long>(parallel_ms)) + " ms");
  char speedup_str[32];
  std::snprintf(speedup_str, sizeof(speedup_str), "%.2fx", speedup);
  bench::PrintRow("speedup", "-", speedup_str);
  bench::PrintRow("results identical", "yes", matches ? "yes" : "NO");

  bench::JsonReport report("scan");
  report.Add("population", static_cast<std::uint64_t>(world.population));
  report.Add("days", world.days);
  report.Add("threads", threads);
  report.Add("hardware_threads", static_cast<std::uint64_t>(cores));
  report.Add("probes", probes);
  report.Add("serial_ms", serial_ms);
  report.Add("parallel_ms", parallel_ms);
  report.Add("speedup", speedup);
  report.AddString("deterministic", matches ? "yes" : "no");
  report.AddString("metrics_deterministic", metrics_match ? "yes" : "no");
  report.AddRaw("metrics", metrics_json);
  const std::string path = report.Write();
  std::printf("\nwrote %s\n", path.c_str());
  return matches ? 0 : 1;
}
