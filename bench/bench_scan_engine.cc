// bench_scan_engine: daily-scan throughput, serial vs sharded.
//
// Runs the full daily-scan campaign twice on identically constructed
// worlds — once at one thread (the serial scanner) and once at
// TLSHARM_THREADS workers (default 8) — reports the speedup, and
// cross-checks that the two runs produced the same aggregates (the
// engine's determinism contract; the byte-level version is enforced by
// ParallelDeterminismTest). A third, profiled run (obs/prof.h) breaks the
// sharded configuration's wall time down by phase — probe, merge,
// store-write — so throughput regressions point at a phase, not just a
// total. Results land in BENCH_scan.json.
#include <algorithm>
#include <chrono>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "common.h"
#include "obs/fleet.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/prof_report.h"
#include "scanner/prober.h"
#include "scanner/scan_engine.h"

using namespace tlsharm;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Shared boxes are noisy and the headline us_per_probe is gated, so the
// serial/parallel times are the best of TLSHARM_BENCH_REPS identical runs
// (default 2; the engine is deterministic, so reps can only differ in
// clock). Scale rows stay single-shot — they characterize, they don't
// gate.
int TimingReps() {
  if (const char* env = std::getenv("TLSHARM_BENCH_REPS")) {
    const int reps = std::atoi(env);
    if (reps >= 1 && reps <= 16) return reps;
  }
  return 2;
}

scanner::DailyScanResult RunOnce(bench::World& world, int threads,
                                 double& elapsed_ms,
                                 obs::MetricsRegistry& metrics) {
  scanner::ScanEngineOptions options;
  options.threads = threads;
  options.metrics = &metrics;
  const auto start = std::chrono::steady_clock::now();
  scanner::DailyScanResult result = scanner::RunShardedDailyScans(
      *world.net, world.days, bench::StudySeed() + 301, options);
  elapsed_ms = MsSince(start);
  return result;
}

// Scanning mutates server state, so every rep gets a fresh, identically
// constructed world. Returns the first rep's result; `best_ms` is the
// minimum wall time across reps.
scanner::DailyScanResult RunTimedBest(bench::World& world, int threads,
                                      double& best_ms,
                                      obs::MetricsRegistry& metrics) {
  scanner::DailyScanResult result;
  best_ms = 0;
  for (int rep = 0, reps = TimingReps(); rep < reps; ++rep) {
    world.net = std::make_unique<simnet::Internet>(
        simnet::PaperPopulationSpec(world.population), bench::StudySeed());
    double ms = 0;
    if (rep == 0) {
      result = RunOnce(world, threads, ms, metrics);
      best_ms = ms;
    } else {
      obs::MetricsRegistry scratch;
      RunOnce(world, threads, ms, scratch);
      best_ms = std::min(best_ms, ms);
    }
  }
  return result;
}

// Resumption-heavy scenario. The plain daily scan never resumes, so its
// metrics always show resume.attempts = 0 / fleet.session.hits = 0 and the
// resumption crypto (ticket decrypt, abbreviated-handshake PRF, session
// cache lookups) goes unmeasured. Here day 0 stores a session per domain,
// then every later day replays each stored session over both resumption
// paths (session ID and ticket) before the cache/STEK state expires.
struct ResumeScenarioResult {
  std::uint64_t resumes = 0;
  std::uint64_t accepted = 0;
  double us_per_resume = 0;
  std::string metrics_json;
};

ResumeScenarioResult RunResumptionScenario(std::size_t population, int days) {
  simnet::Internet net(simnet::PaperPopulationSpec(population),
                       bench::StudySeed() + 977);
  scanner::Prober prober(net, bench::StudySeed() + 978);
  obs::MetricsRegistry metrics;
  prober.SetMetrics(&metrics);

  scanner::ProbeOptions options;
  options.want_full_result = true;

  ResumeScenarioResult r;
  std::vector<scanner::StoredSession> sessions;
  const SimTime day0 = scanner::ScanDayStart(0);
  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    const scanner::ProbeResult result = prober.Probe(id, day0, options);
    if (result.session.valid) sessions.push_back(result.session);
  }

  // Replay each stored session at a ladder of ages, from seconds to days —
  // the same shape as the paper's lifetime sweeps, so short offsets land
  // accepted resumptions (cache hits, ticket decrypts) and long ones land
  // rejections (full-handshake fallback).
  std::vector<SimTime> offsets = {30, 5 * 60, 3600, 6 * 3600};
  for (int day = 1; day < days; ++day) {
    offsets.push_back(static_cast<SimTime>(day) * kDay);
  }
  const auto start = std::chrono::steady_clock::now();
  SimTime last = day0;
  for (const SimTime offset : offsets) {
    last = day0 + offset;
    for (const scanner::StoredSession& session : sessions) {
      r.accepted += prober.TryResumeId(session, session.domain, last) ? 1 : 0;
      r.accepted +=
          prober.TryResumeTicket(session, session.domain, last + 1) ? 1 : 0;
      r.resumes += 2;
    }
  }
  const double elapsed_us = MsSince(start) * 1000.0;
  r.us_per_resume =
      r.resumes == 0 ? 0 : elapsed_us / static_cast<double>(r.resumes);
  obs::CollectFleetMetrics(net, last, metrics);
  r.metrics_json = metrics.SnapshotJson();
  return r;
}

// Wall time spent in the named scan phases, summed from a profiled run's
// snapshot. Probe time is per-worker (it overlaps across shards); merge and
// store-write run on the merge thread, so those are straight wall time.
struct PhaseBreakdown {
  double probe_ms = 0;
  double merge_ms = 0;
  double store_ms = 0;
};

PhaseBreakdown MeasurePhases(bench::World& world, int threads) {
  world.net = std::make_unique<simnet::Internet>(
      simnet::PaperPopulationSpec(world.population), bench::StudySeed());
  obs::SetProfilingEnabled(true);
  obs::ProfReset();
  scanner::ScanEngineOptions options;
  options.threads = threads;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  scanner::RunShardedDailyScans(*world.net, world.days,
                                bench::StudySeed() + 301, options);
  const obs::ProfSnapshot snap = obs::ProfSnapshotNow();
  obs::SetProfilingEnabled(false);
  obs::ProfReset();

  PhaseBreakdown phases;
  for (const obs::ProfSpanStats& span : snap.spans) {
    const double ms = static_cast<double>(span.total_ns) / 1e6;
    if (span.name.rfind("scan.probe.", 0) == 0) {
      phases.probe_ms += ms;
    } else if (span.name == "scan.merge") {
      phases.merge_ms += ms;
    } else if (span.name.rfind("scan.store.", 0) == 0) {
      phases.store_ms += ms;
    }
  }
  return phases;
}

// One population-scaling row: a lazy-fleet study at `population` for
// `days` days. Runs serially for timing; when `check_determinism` is set,
// reruns on a fresh world at 2 threads and cross-checks the loss ledger,
// aggregates and metrics snapshot — the bench-level version of the
// byte-level FleetEquivalenceTest, affordable even at a million domains.
struct ScaleRow {
  std::size_t population = 0;
  double construct_ms = 0;   // Internet blueprint-pass cost
  double elapsed_ms = 0;     // serial scan wall time
  std::uint64_t probes = 0;
  double us_per_probe = 0;
  double peak_rss_mb = 0;    // process VmHWM after this row (monotonic)
  bool deterministic = true; // only meaningful when checked
  bool checked = false;
};

scanner::DailyScanResult RunLazyStudy(std::size_t population, int days,
                                      int threads, double& construct_ms,
                                      double& elapsed_ms,
                                      obs::MetricsRegistry& metrics) {
  simnet::PopulationSpec spec = simnet::PaperPopulationSpec(population);
  spec.fleet_mode = simnet::FleetMode::kLazy;
  auto start = std::chrono::steady_clock::now();
  simnet::Internet net(spec, bench::StudySeed());
  construct_ms = MsSince(start);
  scanner::ScanEngineOptions options;
  options.threads = threads;
  options.metrics = &metrics;
  start = std::chrono::steady_clock::now();
  scanner::DailyScanResult result = scanner::RunShardedDailyScans(
      net, days, bench::StudySeed() + 301, options);
  elapsed_ms = MsSince(start);
  return result;
}

ScaleRow RunScaleRow(std::size_t population, int days,
                     bool check_determinism) {
  ScaleRow row;
  row.population = population;
  obs::MetricsRegistry metrics;
  const scanner::DailyScanResult serial = RunLazyStudy(
      population, days, 1, row.construct_ms, row.elapsed_ms, metrics);
  for (const scanner::DayLoss& day : serial.loss) row.probes += day.scheduled;
  row.us_per_probe =
      row.probes > 0 ? row.elapsed_ms * 1000.0 / static_cast<double>(row.probes)
                     : 0;
  if (check_determinism) {
    row.checked = true;
    double unused_construct = 0, unused_elapsed = 0;
    obs::MetricsRegistry parallel_metrics;
    const scanner::DailyScanResult parallel =
        RunLazyStudy(population, days, 2, unused_construct, unused_elapsed,
                     parallel_metrics);
    row.deterministic =
        serial.core_domains == parallel.core_domains &&
        serial.core_ever_ticket == parallel.core_ever_ticket &&
        serial.core_ever_ecdhe == parallel.core_ever_ecdhe &&
        serial.core_ever_dhe_connect == parallel.core_ever_dhe_connect &&
        serial.loss.size() == parallel.loss.size() &&
        metrics.SnapshotJson() == parallel_metrics.SnapshotJson();
    for (std::size_t day = 0;
         row.deterministic && day < serial.loss.size(); ++day) {
      row.deterministic =
          serial.loss[day].scheduled == parallel.loss[day].scheduled &&
          serial.loss[day].lost == parallel.loss[day].lost;
    }
  }
  row.peak_rss_mb = bench::ReadPeakRssMb();
  return row;
}

// `bench_scan_engine --memcheck`: one lazy-fleet scan sized by
// TLSHARM_POPULATION (default 65536), 2 days, then a single parseable
// line. scripts/check.sh gates on the reported peak.
int RunMemcheck() {
  std::size_t population = 65536;
  if (const char* env = std::getenv("TLSHARM_POPULATION")) {
    const long n = std::atol(env);
    if (n > 0) population = static_cast<std::size_t>(n);
  }
  double construct_ms = 0, elapsed_ms = 0;
  obs::MetricsRegistry metrics;
  std::uint64_t probes = 0;
  const scanner::DailyScanResult result = RunLazyStudy(
      population, 2, scanner::ScanThreadsFromEnv(), construct_ms, elapsed_ms,
      metrics);
  for (const scanner::DayLoss& day : result.loss) probes += day.scheduled;
  std::printf("memcheck population=%zu probes=%llu elapsed_ms=%.0f "
              "peak_rss_mb=%.1f\n",
              population, static_cast<unsigned long long>(probes),
              construct_ms + elapsed_ms, bench::ReadPeakRssMb());
  return probes > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string_view(argv[1]) == "--memcheck") {
    return RunMemcheck();
  }
  bench::World world = bench::BuildWorld("scan engine throughput");
  int threads = scanner::ScanThreadsFromEnv();
  if (threads <= 1) threads = 8;

  double serial_ms = 0;
  obs::MetricsRegistry serial_metrics;
  const scanner::DailyScanResult serial =
      RunTimedBest(world, 1, serial_ms, serial_metrics);

  double parallel_ms = 0;
  obs::MetricsRegistry parallel_metrics;
  const scanner::DailyScanResult parallel =
      RunTimedBest(world, threads, parallel_ms, parallel_metrics);
  // The telemetry shares the scan's determinism contract: the merged
  // snapshot must not depend on the thread count.
  const std::string metrics_json = parallel_metrics.SnapshotJson();
  const bool metrics_match = serial_metrics.SnapshotJson() == metrics_json;

  std::uint64_t probes = 0;
  bool loss_matches = serial.loss.size() == parallel.loss.size();
  for (std::size_t day = 0; day < serial.loss.size(); ++day) {
    probes += serial.loss[day].scheduled;
    loss_matches = loss_matches &&
                   serial.loss[day].scheduled == parallel.loss[day].scheduled &&
                   serial.loss[day].lost == parallel.loss[day].lost;
  }
  const bool matches =
      loss_matches && metrics_match &&
      serial.core_domains == parallel.core_domains &&
      serial.core_ever_ticket == parallel.core_ever_ticket &&
      serial.core_ever_ecdhe == parallel.core_ever_ecdhe &&
      serial.core_ever_dhe_connect == parallel.core_ever_dhe_connect;
  const double speedup = parallel_ms > 0 ? serial_ms / parallel_ms : 0;

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("daily scans: %llu probes over %d days (%u hardware threads)\n",
              static_cast<unsigned long long>(probes), world.days, cores);
  const char* speedup_note =
      cores < 2 ? "single hardware thread: sharding can only show its "
                  "overhead here, not speedup; expect ~1.0x or slightly "
                  "below, scaling with cores elsewhere"
                : "";
  if (cores < 2) {
    std::printf("WARNING: %s.\n", speedup_note);
  }
  bench::PrintRow("serial (1 thread)",
                  "-", std::to_string(static_cast<long long>(serial_ms)) + " ms");
  bench::PrintRow("sharded (" + std::to_string(threads) + " threads)",
                  "-", std::to_string(static_cast<long long>(parallel_ms)) + " ms");
  char speedup_str[32];
  std::snprintf(speedup_str, sizeof(speedup_str), "%.2fx", speedup);
  bench::PrintRow("speedup", "-", speedup_str);
  bench::PrintRow("results identical", "yes", matches ? "yes" : "NO");

  // Absolute throughput of the fastest configuration on this machine:
  // sharded where cores exist, serial where sharding is pure overhead
  // (one hardware thread — see the WARNING above). Both raw times are
  // still reported, so neither configuration hides.
  const double best_ms = std::min(serial_ms, parallel_ms);
  const double us_per_probe =
      probes > 0 ? best_ms * 1000.0 / static_cast<double>(probes) : 0;
  const double probes_per_sec =
      best_ms > 0 ? static_cast<double>(probes) * 1000.0 / best_ms : 0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f us (%s)", us_per_probe,
                serial_ms <= parallel_ms ? "serial" : "sharded");
  bench::PrintRow("us per probe (best config)", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.0f", probes_per_sec);
  bench::PrintRow("probes per second (best config)", "-", buf);

  // Per-phase wall-time breakdown from a profiled rerun of the sharded
  // configuration: where a throughput regression should send you looking.
  const PhaseBreakdown phases = MeasurePhases(world, threads);
  std::snprintf(buf, sizeof(buf), "%.1f ms (across %d shards)",
                phases.probe_ms, threads);
  bench::PrintRow("phase: probe (summed worker time)", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.1f ms", phases.merge_ms);
  bench::PrintRow("phase: merge (merge thread)", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.1f ms", phases.store_ms);
  bench::PrintRow("phase: store write (merge thread)", "-", buf);

  const ResumeScenarioResult resume =
      RunResumptionScenario(world.population, world.days);
  std::snprintf(buf, sizeof(buf), "%.1f us (%llu resumes, %llu accepted)",
                resume.us_per_resume,
                static_cast<unsigned long long>(resume.resumes),
                static_cast<unsigned long long>(resume.accepted));
  bench::PrintRow("resumption-heavy: us per resume", "-", buf);

  // Population scaling: the memory-bounded path (lazy fleet) from the
  // baseline population up to the paper's full Top 1 Million, two days
  // each so a row is one cache-warm day plus one steady-state day. The
  // million-domain row additionally reruns at 2 threads and cross-checks
  // loss/aggregates/metrics (scale_1000000_deterministic). peak_rss_mb is
  // the process high-water mark sampled after each row — the largest
  // population runs last so its row bounds the whole sweep.
  std::printf("\npopulation scaling (lazy fleet, 2 days, serial):\n");
  std::vector<ScaleRow> scale_rows;
  bool scale_deterministic = true;
  for (const std::size_t pop :
       {std::size_t{4000}, std::size_t{65536}, std::size_t{1000000}}) {
    const ScaleRow row = RunScaleRow(pop, 2, /*check_determinism=*/
                                     pop == 1000000);
    scale_rows.push_back(row);
    if (row.checked) scale_deterministic = scale_deterministic &&
                                           row.deterministic;
    std::snprintf(buf, sizeof(buf), "%.1f us/probe, peak rss %.0f MB%s",
                  row.us_per_probe, row.peak_rss_mb,
                  row.checked
                      ? (row.deterministic ? ", deterministic"
                                           : ", NON-DETERMINISTIC")
                      : "");
    bench::PrintRow("scale " + std::to_string(pop) + " domains", "-", buf);
  }

  bench::JsonReport report("scan");
  report.Add("population", static_cast<std::uint64_t>(world.population));
  report.Add("days", world.days);
  report.Add("threads", threads);
  report.Add("hardware_threads", static_cast<std::uint64_t>(cores));
  report.Add("probes", probes);
  report.Add("serial_ms", serial_ms);
  report.Add("parallel_ms", parallel_ms);
  report.Add("speedup", speedup);
  report.AddString("speedup_note", speedup_note);
  report.Add("phase_probe_ms", phases.probe_ms);
  report.Add("phase_merge_ms", phases.merge_ms);
  report.Add("phase_store_ms", phases.store_ms);
  report.Add("us_per_probe", us_per_probe);
  report.Add("probes_per_sec", probes_per_sec);
  report.Add("resume_count", resume.resumes);
  report.Add("resume_accepted", resume.accepted);
  report.Add("resume_us_per_probe", resume.us_per_resume);
  for (const ScaleRow& row : scale_rows) {
    const std::string prefix = "scale_" + std::to_string(row.population);
    report.Add(prefix + "_construct_ms", row.construct_ms);
    report.Add(prefix + "_elapsed_ms", row.elapsed_ms);
    report.Add(prefix + "_probes", row.probes);
    report.Add(prefix + "_us_per_probe", row.us_per_probe);
    report.Add(prefix + "_peak_rss_mb", row.peak_rss_mb);
    if (row.checked) {
      report.AddString(prefix + "_deterministic",
                       row.deterministic ? "yes" : "no");
    }
  }
  report.Add("peak_rss_mb", bench::ReadPeakRssMb());
  report.AddString("deterministic",
                   matches && scale_deterministic ? "yes" : "no");
  report.AddString("metrics_deterministic", metrics_match ? "yes" : "no");
  report.AddRaw("metrics", metrics_json);
  report.AddRaw("resume_metrics", resume.metrics_json);
  const std::string path = report.Write();
  std::printf("\nwrote %s\n", path.c_str());
  return matches && scale_deterministic ? 0 : 1;
}
