// Table 6: Largest STEK Service Groups — domains observed issuing tickets
// under the same STEK identifier (§5.2).
#include "common.h"
#include "scanner/experiments.h"

using namespace tlsharm;
using namespace tlsharm::bench;

int main() {
  World world = BuildWorld("Table 6: Largest STEK Service Groups");
  const auto result = scanner::MeasureStekGroups(
      *world.net, /*day=*/0, /*seed=*/601, /*connections=*/10,
      /*window=*/6 * kHour);

  std::size_t singles = 0;
  for (const auto& group : result.groups) singles += group.size() == 1;

  PrintRow("ticket-supporting domains",
           PaperCountAtScale(354697, world.scale),
           FormatCount(result.participants));
  PrintRow("STEK service groups", PaperCountAtScale(170634, world.scale),
           FormatCount(result.groups.size()));
  PrintRow("single-domain groups", "83%",
           Pct(result.groups.empty()
                   ? 0
                   : static_cast<double>(singles) / result.groups.size(), 0));

  std::printf("\nTen largest STEK service groups:\n");
  TextTable table({"Operator", "# domains", "paper row"});
  const char* paper_rows[] = {
      "CloudFlare: 62,176", "Google: 8,973",   "Automattic: 4,182",
      "TMall: 3,305",       "Shopify: 3,247",  "GoDaddy: 1,875",
      "Amazon: 1,495",      "Tumblr #1: 975",  "Tumblr #2: 959",
      "Tumblr #3: 956"};
  for (std::size_t i = 0; i < 10 && i < result.groups.size(); ++i) {
    const auto& group = result.groups[i];
    if (group.size() < 2) break;
    table.AddRow({world.net->GetDomain(group.front()).operator_name,
                  FormatCount(group.size()), paper_rows[i]});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(paper counts are at Top-1M scale; multiply ours by %.1f to"
              " compare)\n", 1.0 / world.scale);
  return 0;
}
