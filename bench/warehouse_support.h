// --warehouse <dir> support for the figure benches: the first run records
// the study into a columnar warehouse, subsequent runs replay it without
// scanning. All three modes print identical numbers — record mode derives
// its aggregates from the bytes it just wrote (not from the engine's
// in-memory result), and fold-vs-engine parity is gated separately by
// tests/warehouse and `tlsharm-import --selftest`.
//
// Mode notes go to stderr so stdout stays diffable against the live path.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "scanner/scan_engine.h"
#include "warehouse/fold.h"
#include "warehouse/warehouse.h"

namespace tlsharm::bench {

class WarehouseSession {
 public:
  WarehouseSession(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--warehouse") == 0) dir_ = argv[i + 1];
    }
    if (dir_.empty()) return;
    std::string error;
    if (std::filesystem::exists(std::filesystem::path(dir_) / "MANIFEST")) {
      replay_ = true;
      warehouse_ = warehouse::Warehouse::Open(dir_, &error);
      if (!warehouse_.has_value()) Fail("open", error);
      std::fprintf(stderr,
                   "[warehouse] replaying %s (%d days, %llu rows, %zu "
                   "experiment tables)\n",
                   dir_.c_str(), warehouse_->DayCount(),
                   static_cast<unsigned long long>(warehouse_->TotalRows()),
                   warehouse_->Experiments().size());
    } else {
      writer_ = warehouse::WarehouseWriter::Create(dir_, &error);
      if (writer_ == nullptr) Fail("create", error);
      std::fprintf(stderr, "[warehouse] recording into %s\n", dir_.c_str());
    }
  }

  bool replay() const { return replay_; }

  // Daily scans. Live mode runs the serial engine; record mode runs the
  // same engine streaming into the warehouse, then folds the segments it
  // just wrote; replay mode folds the stored segments without scanning.
  scanner::DailyScanResult DailyScans(simnet::Internet& net, int days,
                                      std::uint64_t seed) {
    if (dir_.empty()) return scanner::RunDailyScans(net, days, seed);
    std::string error;
    if (!replay_) {
      // TLSHARM_THREADS may shard the recording run: the engine's
      // determinism contract makes the warehouse bytes (and thus every
      // number printed here) identical at any thread count.
      scanner::ScanEngineOptions options;
      options.threads = scanner::ScanThreadsFromEnv();
      options.store = writer_.get();
      scanner::RunShardedDailyScans(net, days, seed, options);
      if (!writer_->ok()) Fail("record scans", writer_->error());
      warehouse_ = warehouse::Warehouse::Open(dir_, &error);
      if (!warehouse_.has_value()) Fail("reopen", error);
    }
    scanner::DailyScanResult result;
    warehouse::FoldStats stats;
    if (!warehouse::FoldDailyScans(*warehouse_, net, {}, &result, &error,
                                   &stats)) {
      Fail("fold", error);
    }
    std::fprintf(stderr, "[warehouse] folded %d day(s), %llu rows\n",
                 stats.days_folded,
                 static_cast<unsigned long long>(stats.rows_folded));
    return result;
  }

  // Resumption-lifetime experiments (`kind` is "session_id" or "ticket").
  // Record mode measures live, writes the table, and reads it back so the
  // printed numbers come from the warehouse bytes.
  scanner::ResumptionLifetimeResult Lifetime(const char* kind,
                                             simnet::Internet& net, int day,
                                             std::uint64_t seed,
                                             SimTime max_delay,
                                             SimTime step) {
    const bool via_ticket = std::strcmp(kind, "ticket") == 0;
    auto measure = [&] {
      return via_ticket
                 ? scanner::MeasureTicketLifetime(net, day, seed, max_delay,
                                                  step)
                 : scanner::MeasureSessionIdLifetime(net, day, seed,
                                                     max_delay, step);
    };
    if (dir_.empty()) return measure();
    std::string error;
    if (!replay_) {
      writer_->WriteLifetime(kind, measure());
      if (!writer_->ok()) Fail("record lifetime", writer_->error());
      warehouse_ = warehouse::Warehouse::Open(dir_, &error);
      if (!warehouse_.has_value()) Fail("reopen", error);
      std::fprintf(stderr, "[warehouse] recorded \"%s\" lifetime table\n",
                   kind);
    }
    scanner::ResumptionLifetimeResult result;
    if (!warehouse_->ReadExperiment(kind, &result, &error)) Fail(kind, error);
    return result;
  }

 private:
  [[noreturn]] void Fail(const std::string& what,
                         const std::string& error) const {
    std::fprintf(stderr, "[warehouse] %s: %s\n", what.c_str(), error.c_str());
    std::exit(1);
  }

  std::string dir_;
  bool replay_ = false;
  std::unique_ptr<warehouse::WarehouseWriter> writer_;
  std::optional<warehouse::Warehouse> warehouse_;
};

}  // namespace tlsharm::bench
