// Micro-benchmarks (google-benchmark): the performance economics behind the
// paper's crypto shortcuts — what servers save by reusing (EC)DHE values
// and by resuming sessions, plus the primitive costs.
#include <benchmark/benchmark.h>

#include "crypto/ffdh.h"
#include "crypto/kex.h"
#include "crypto/prf.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"
#include "crypto/simec61.h"
#include "crypto/x25519.h"
#include "pki/ca.h"
#include "pki/root_store.h"
#include "server/terminator.h"
#include "tls/client.h"
#include "tls/ticket.h"

namespace {

using namespace tlsharm;

// Shared PKI + terminator fixtures (built once).
struct Fixture {
  Fixture()
      : drbg(ToBytes("bench")),
        root("Bench Root", pki::SignatureScheme::kSchnorrSim61, drbg),
        intermediate("Bench Intermediate", pki::SignatureScheme::kSchnorrSim61,
                     drbg) {
    store.AddRoot(root.Name(), root.Scheme(), root.PublicKey());
    chain.push_back(root.IssueCaCertificate(intermediate, 0, 365 * kDay, drbg));
  }
  crypto::Drbg drbg;
  pki::CertificateAuthority root;
  pki::CertificateAuthority intermediate;
  pki::CertificateChain chain;
  pki::RootStore store;
};

Fixture& F() {
  static auto* fixture = new Fixture();
  return *fixture;
}

std::unique_ptr<server::SslTerminator> MakeServer(server::ServerConfig config) {
  auto term = std::make_unique<server::SslTerminator>("bench", config, 1);
  server::Credential cred = server::MakeCredential(
      F().intermediate, {"bench.example"}, pki::SignatureScheme::kSchnorrSim61,
      0, 365 * kDay, F().chain, F().drbg);
  term->MapDomain("bench.example", term->AddCredential(std::move(cred)));
  return term;
}

void BM_Sha256_1KiB(benchmark::State& state) {
  const Bytes data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_Tls12Prf_KeyBlock(benchmark::State& state) {
  const Bytes secret(48, 0x11), seed(64, 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Tls12Prf(secret, "key expansion", seed, 96));
  }
}
BENCHMARK(BM_Tls12Prf_KeyBlock);

template <crypto::NamedGroup G>
void BM_KexKeygen(benchmark::State& state) {
  crypto::Drbg drbg(ToBytes("kex"));
  const auto& group = crypto::GetKexGroup(G);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.GenerateKeyPair(drbg));
  }
}
BENCHMARK(BM_KexKeygen<crypto::NamedGroup::kSimEc61>);
BENCHMARK(BM_KexKeygen<crypto::NamedGroup::kFfdheSim61>);
BENCHMARK(BM_KexKeygen<crypto::NamedGroup::kFfdheSim256>);
BENCHMARK(BM_KexKeygen<crypto::NamedGroup::kX25519>);

void BM_TicketSealOpen(benchmark::State& state) {
  crypto::Drbg drbg(ToBytes("ticket"));
  const tls::Stek stek = tls::Stek::Generate(drbg);
  tls::TicketState ticket_state;
  ticket_state.cipher_suite = 0xc027;
  ticket_state.master_secret = Bytes(48, 0x42);
  const auto& codec = tls::Rfc5077Codec();
  for (auto _ : state) {
    const Bytes ticket = codec.Seal(stek, ticket_state, drbg);
    benchmark::DoNotOptimize(codec.Open(stek, ticket));
  }
}
BENCHMARK(BM_TicketSealOpen);

// Full handshake with fresh ECDHE values every time (no shortcuts).
void BM_FullHandshake_FreshKex(benchmark::State& state) {
  auto term = MakeServer(server::ServerConfig{});
  crypto::Drbg drbg(ToBytes("client"));
  tls::ClientConfig config;
  config.server_name = "bench.example";
  config.root_store = &F().store;
  for (auto _ : state) {
    auto conn = term->NewConnection(100);
    tls::TlsClient client(config);
    benchmark::DoNotOptimize(client.Handshake(*conn, 100, drbg));
  }
}
BENCHMARK(BM_FullHandshake_FreshKex);

// Full handshake with a reused server ECDHE value (§4.4's saving).
void BM_FullHandshake_ReusedKex(benchmark::State& state) {
  server::ServerConfig server_config;
  server_config.ecdhe_reuse = {.reuse = true, .ttl = 0};
  auto term = MakeServer(server_config);
  crypto::Drbg drbg(ToBytes("client"));
  tls::ClientConfig config;
  config.server_name = "bench.example";
  config.root_store = &F().store;
  for (auto _ : state) {
    auto conn = term->NewConnection(100);
    tls::TlsClient client(config);
    benchmark::DoNotOptimize(client.Handshake(*conn, 100, drbg));
  }
}
BENCHMARK(BM_FullHandshake_ReusedKex);

// Abbreviated handshake via session ticket (what resumption saves).
void BM_AbbreviatedHandshake_Ticket(benchmark::State& state) {
  auto term = MakeServer(server::ServerConfig{});
  crypto::Drbg drbg(ToBytes("client"));
  tls::ClientConfig config;
  config.server_name = "bench.example";
  auto conn0 = term->NewConnection(0);
  tls::TlsClient first(config);
  const auto hs = first.Handshake(*conn0, 0, drbg);
  tls::ClientConfig resume = config;
  resume.resume_ticket = hs.ticket;
  resume.resume_master_secret = hs.master_secret;
  for (auto _ : state) {
    auto conn = term->NewConnection(60);
    tls::TlsClient client(resume);
    benchmark::DoNotOptimize(client.Handshake(*conn, 60, drbg));
  }
}
BENCHMARK(BM_AbbreviatedHandshake_Ticket);

// Full-strength groups for comparison.
void BM_FullHandshake_X25519(benchmark::State& state) {
  server::ServerConfig server_config;
  server_config.ecdhe_group = crypto::NamedGroup::kX25519;
  auto term = MakeServer(server_config);
  crypto::Drbg drbg(ToBytes("client"));
  tls::ClientConfig config;
  config.server_name = "bench.example";
  for (auto _ : state) {
    auto conn = term->NewConnection(100);
    tls::TlsClient client(config);
    benchmark::DoNotOptimize(client.Handshake(*conn, 100, drbg));
  }
}
BENCHMARK(BM_FullHandshake_X25519);

void BM_SchnorrSignVerify(benchmark::State& state) {
  crypto::Drbg drbg(ToBytes("sig"));
  const auto& scheme = crypto::SchnorrSim61();
  const auto kp = scheme.GenerateKeyPair(drbg);
  const Bytes msg = ToBytes("server key exchange params");
  for (auto _ : state) {
    const auto sig = scheme.Sign(kp.private_key, msg, drbg);
    benchmark::DoNotOptimize(scheme.Verify(kp.public_key, msg, sig));
  }
}
BENCHMARK(BM_SchnorrSignVerify);

}  // namespace

BENCHMARK_MAIN();
