// Figures 3–5 and Tables 2–4: secret-state longevity from daily scans.
//
// One scan per simulated day over the whole study: a default-cipher
// connection records the issued ticket's STEK id and the server's ECDHE
// value; a DHE-only connection records the DHE value. Spans are
// first-seen/last-seen per (domain, id), tolerant of load-balancer jitter.
#include <algorithm>

#include "common.h"
#include "scanner/experiments.h"
#include "warehouse_support.h"

using namespace tlsharm;
using namespace tlsharm::bench;

namespace {

void PrintSpanCdf(const char* title, const analysis::SpanTracker& spans,
                  const std::vector<simnet::DomainId>& core,
                  double paper_1d, double paper_7d, double paper_30d,
                  std::size_t denominator) {
  std::size_t ge1 = 0, ge7 = 0, ge30 = 0, observed = 0;
  for (const auto id : core) {
    const int span = spans.MaxSpanDays(id);
    if (span == 0) continue;
    ++observed;
    // "Reused for at least N days" == an id recurred across >= N scan days,
    // i.e. span > N (span 1 means never recurred).
    if (span >= 2) ++ge1;
    if (span >= 7) ++ge7;
    if (span >= 30) ++ge30;
  }
  std::printf("%s (observed on %s domains)\n", title,
              FormatCount(observed).c_str());
  const double denom = static_cast<double>(denominator);
  PrintRow("  reused >= 1 day", Pct(paper_1d),
           Pct(static_cast<double>(ge1) / denom));
  PrintRow("  reused >= 7 days", Pct(paper_7d),
           Pct(static_cast<double>(ge7) / denom));
  PrintRow("  reused >= 30 days", Pct(paper_30d),
           Pct(static_cast<double>(ge30) / denom));
}

void PrintTopTable(const char* title, simnet::Internet& net,
                   const analysis::SpanTracker& spans,
                   const std::vector<simnet::DomainId>& core,
                   int min_days) {
  struct Row {
    int rank;
    std::string domain;
    int days;
  };
  std::vector<Row> rows;
  for (const auto id : core) {
    const int span = spans.MaxSpanDays(id);
    if (span < min_days) continue;
    const auto& info = net.GetDomain(id);
    rows.push_back(Row{info.rank, info.name, span});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.rank < b.rank; });
  std::printf("\n%s (top 10 by rank, >= %d days)\n", title, min_days);
  TextTable table({"Rank", "Domain", "# Days"});
  for (std::size_t i = 0; i < rows.size() && i < 10; ++i) {
    table.AddRow({std::to_string(rows[i].rank), rows[i].domain,
                  std::to_string(rows[i].days)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  WarehouseSession session(argc, argv);
  World world = BuildWorld(
      "Figures 3-5 / Tables 2-4: STEK and (EC)DHE value longevity");
  simnet::Internet& net = *world.net;
  const auto scan = session.DailyScans(net, world.days, 301);
  const auto& core = scan.core_domains;
  const std::size_t n_core = core.size();
  std::printf("core (always-listed, trusted) domains: %s (paper 291,643%s)\n\n",
              FormatCount(n_core).c_str(),
              (" -> " + Count(291643 * world.scale) + "@scale").c_str());

  // --- Figure 3: STEK lifetime ------------------------------------------------
  std::size_t never_issued = 0, daily = 0, ge7 = 0, ge30 = 0;
  for (const auto id : core) {
    const int span = scan.stek_spans.MaxSpanDays(id);
    if (span == 0) {
      ++never_issued;
    } else if (span <= 1) {
      ++daily;
    }
    if (span >= 7) ++ge7;
    if (span >= 30) ++ge30;
  }
  std::printf("Figure 3: STEK lifetime (fractions of core domains)\n");
  PrintRow("never issued a session ticket", "23%",
           Pct(static_cast<double>(never_issued) / n_core, 0));
  PrintRow("different issuing STEK each day", "41%",
           Pct(static_cast<double>(daily) / n_core, 0));
  PrintRow("same STEK >= 7 days", "22%",
           Pct(static_cast<double>(ge7) / n_core, 0));
  PrintRow("same STEK >= 30 days", "10%",
           Pct(static_cast<double>(ge30) / n_core, 0));

  // CDF series for the figure.
  EmpiricalDistribution stek_cdf;
  for (const auto id : core) {
    const int span = scan.stek_spans.MaxSpanDays(id);
    if (span > 0) stek_cdf.Add(span);
  }
  std::printf("\nFigure 3 series (span days -> CDF over ticket issuers):\n  ");
  for (const int d : {1, 2, 3, 7, 14, 30, 45, 63}) {
    std::printf("%dd:%.3f  ", d, stek_cdf.CdfAt(d));
  }
  std::printf("\n");

  // --- Figure 4: STEK lifetime by Alexa rank tier -----------------------------
  std::printf("\nFigure 4: STEK lifetime by Alexa rank tier\n");
  const double tier_bounds[] = {100, 1000, 10000, 100000, 1e9};
  const char* tier_names[] = {"Top 100", "Top 1K", "Top 10K", "Top 100K",
                              "Top 1M"};
  for (int tier = 0; tier < 5; ++tier) {
    std::size_t issuers = 0, tier_ge30 = 0, tier_ge7 = 0;
    const double scaled_bound = tier_bounds[tier];
    for (const auto id : core) {
      const auto& info = net.GetDomain(id);
      if (info.rank > scaled_bound) continue;
      const int span = scan.stek_spans.MaxSpanDays(id);
      if (span == 0) continue;
      ++issuers;
      if (span >= 7) ++tier_ge7;
      if (span >= 30) ++tier_ge30;
    }
    std::printf("  %-9s issuers=%-7s >=7d=%-6s >=30d=%s\n", tier_names[tier],
                FormatCount(issuers).c_str(), FormatCount(tier_ge7).c_str(),
                FormatCount(tier_ge30).c_str());
  }
  std::printf("  (paper: 56 issuers in Top 100, of which 12 persisted a STEK"
              " >= 30 days)\n");

  // --- Table 2: top domains with prolonged STEK reuse -------------------------
  PrintTopTable("Table 2: Top domains with prolonged STEK reuse", net,
                scan.stek_spans, core, 7);
  std::printf("  (paper: yahoo.com 63 | qq.com 56 | taobao.com 63 |"
              " pinterest.com 63 | yandex.ru 63 |\n   netflix.com 54 |"
              " imgur.com 63 | tmall.com 63 | fc2.com 18 | pornhub.com 29)\n");

  // --- Figure 5 / Tables 3-4: (EC)DHE value reuse -----------------------------
  std::printf("\nFigure 5: ephemeral exchange value reuse\n");
  std::printf("DHE-only connections ever succeeded: %s (paper 57%% of core)\n",
              Pct(static_cast<double>(scan.core_ever_dhe_connect) / n_core, 0)
                  .c_str());
  PrintSpanCdf("DHE value spans", scan.dhe_spans, core, 0.013, 0.012, 0.0052,
               n_core);
  std::printf("ECDHE handshakes ever completed: %s (paper 80%% of core)\n",
              Pct(static_cast<double>(scan.core_ever_ecdhe) / n_core, 0)
                  .c_str());
  PrintSpanCdf("ECDHE value spans", scan.ecdhe_spans, core, 0.034, 0.030,
               0.014, n_core);

  PrintTopTable("Table 3: Top domains with prolonged DHE reuse", net,
                scan.dhe_spans, core, 7);
  std::printf("  (paper: netflix.com 59 | fc2.com 18 | ebay.in 7 | ebay.it 8 |"
              " bleacherreport.com 24 |\n   kayak.com 13 | cbssports.com 60 |"
              " gamefaqs.com 12 | overstock.com 17 | cookpad.com 63)\n");

  PrintTopTable("Table 4: Top domains with prolonged ECDHE reuse", net,
                scan.ecdhe_spans, core, 7);
  std::printf("  (paper: netflix.com 59 | whatsapp.com 62 | vice.com 26 |"
              " 9gag.com 31 | liputan6.com 28 |\n   paytm.com 27 |"
              " playstation.com 11 | woot.com 62 | bleacherreport.com 24 |"
              " leagueoflegends.com 27)\n");
  return 0;
}
