// Figure 8: Overall Vulnerability Windows — the combined effect of session
// tickets, session caches and Diffie-Hellman reuse (§6.4).
//
// Per domain, the exposure window is the maximum of: the measured STEK span,
// the honoured session-ID window, the honoured ticket window, and the
// (EC)DHE value-reuse span. The paper's headline: 38% of domains > 24 hours,
// 22% > 7 days, 10% > 30 days.
#include "analysis/vuln.h"
#include "common.h"
#include "scanner/experiments.h"
#include "warehouse_support.h"

using namespace tlsharm;
using namespace tlsharm::bench;

int main(int argc, char** argv) {
  WarehouseSession session(argc, argv);
  World world = BuildWorld("Figure 8: Overall Vulnerability Windows");
  simnet::Internet& net = *world.net;

  const auto scan = session.DailyScans(net, world.days, 301);
  const auto id_result =
      session.Lifetime("session_id", net, 0, 801, 24 * kHour, 15 * kMinute);
  const auto ticket_result =
      session.Lifetime("ticket", net, 0, 802, 24 * kHour, 15 * kMinute);

  std::vector<analysis::DomainExposure> exposures(net.DomainCount());
  for (const auto& m : id_result.lifetimes) {
    exposures[m.domain].cache_window = m.max_delay;
  }
  for (const auto& m : ticket_result.lifetimes) {
    exposures[m.domain].ticket_window = m.max_delay;
  }
  for (const auto id : scan.core_domains) {
    // Span of S days == secret lived at least (S-1) days beyond the
    // connection; a span of 1 contributes the scan-day granularity floor.
    const int stek = scan.stek_spans.MaxSpanDays(id);
    if (stek > 1) exposures[id].stek_window = (stek - 1) * kDay;
    const int dh = std::max(scan.dhe_spans.MaxSpanDays(id),
                            scan.ecdhe_spans.MaxSpanDays(id));
    if (dh > 1) exposures[id].dh_window = (dh - 1) * kDay;
  }

  // Restrict to the paper's 288,252: core domains with any mechanism.
  std::vector<analysis::DomainExposure> core_exposures;
  for (const auto id : scan.core_domains) {
    if (exposures[id].AnyMechanism()) core_exposures.push_back(exposures[id]);
  }
  const auto dist = analysis::CombinedWindowDistribution(core_exposures);

  PrintRow("core domains with any mechanism",
           PaperCountAtScale(288252, world.scale),
           FormatCount(core_exposures.size()));
  std::printf("\nCombined vulnerability windows:\n");
  PrintRow("window > 24 hours", "38%",
           Pct(dist.FractionAtLeast(static_cast<double>(kDay)), 0));
  PrintRow("window > 7 days", "22%",
           Pct(dist.FractionAtLeast(static_cast<double>(7 * kDay)), 0));
  PrintRow("window > 30 days", "10%",
           Pct(dist.FractionAtLeast(static_cast<double>(30 * kDay)), 0));

  std::printf("\nFigure 8 series (window -> CDF):\n  ");
  const struct {
    const char* label;
    SimTime window;
  } points[] = {{"5m", 5 * kMinute}, {"1h", kHour},     {"18h", 18 * kHour},
                {"1d", kDay},        {"2d", 2 * kDay},  {"7d", 7 * kDay},
                {"14d", 14 * kDay},  {"30d", 30 * kDay},
                {"63d", 63 * kDay}};
  for (const auto& p : points) {
    std::printf("%s:%.3f  ", p.label,
                dist.CdfAt(static_cast<double>(p.window)));
  }
  std::printf("\n");
  return 0;
}
