#!/usr/bin/env bash
# Full check: build + test the plain configuration, then again with
# TLSHARM_SANITIZE=ON (ASan + UBSan) to catch memory and UB bugs the plain
# run can't — in particular in the fault-injection / corrupted-flight paths.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "== ${name}: configure =="
  cmake -B "${dir}" -S "${repo}" "$@"
  echo "== ${name}: build =="
  cmake --build "${dir}" -j "${jobs}"
  echo "== ${name}: test =="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config "plain" "${repo}/build"
run_config "sanitized" "${repo}/build-asan" -DTLSHARM_SANITIZE=ON

echo "All checks passed (plain + sanitized)."
