#!/usr/bin/env bash
# Full check: build + test the plain configuration, again with
# TLSHARM_SANITIZE=ON (ASan + UBSan) to catch memory and UB bugs the plain
# run can't — in particular in the fault-injection / corrupted-flight paths —
# and once more with TLSHARM_SANITIZE=thread (TSan) running the concurrency
# battery: the crypto known-answer vectors plus the sharded scan engine's
# determinism test, which hammers the shared terminators from eight workers.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1" dir="$2"
  shift 2
  local filter=""
  if [[ "${1:-}" == "--filter" ]]; then
    filter="$2"
    shift 2
  fi
  echo "== ${name}: configure =="
  cmake -B "${dir}" -S "${repo}" "$@"
  echo "== ${name}: build =="
  cmake --build "${dir}" -j "${jobs}"
  echo "== ${name}: test =="
  if [[ -n "${filter}" ]]; then
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" -R "${filter}"
  else
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
  fi
}

run_config "plain" "${repo}/build"

# Observability gate: a short instrumented scan through scanstats. Fails on
# any telemetry-schema or determinism drift — the metrics snapshot, probe
# trace and observation store must be byte-identical at 1/2/8 threads, and
# the snapshot must round-trip through its own parser byte-for-byte.
echo "== observability: scanstats --selftest =="
"${repo}/build/examples/scanstats" --selftest

# Warehouse gate: the columnar store must be byte-identical at 1/2/8
# threads, round-trip the text store exactly, and reproduce the engine's
# aggregates through the incremental fold (tlsharm-import); the query layer
# must count/group deterministically (obsq); and a figure bench recorded
# into a warehouse and replayed from it must print the same numbers as the
# live scan (the world-build timing line is the only nondeterminism).
echo "== warehouse: tlsharm-import --selftest =="
"${repo}/build/examples/tlsharm-import" --selftest
echo "== warehouse: obsq --selftest =="
"${repo}/build/examples/obsq" --selftest

echo "== warehouse: figure-bench record/replay parity =="
whdir="$(mktemp -d)"
trap 'rm -rf "${whdir}"' EXIT
bench="${repo}/build/bench/bench_fig3_fig4_fig5_longevity"
TLSHARM_POPULATION=1500 TLSHARM_DAYS=6 "${bench}" \
  > "${whdir}/live.txt"
TLSHARM_POPULATION=1500 TLSHARM_DAYS=6 "${bench}" \
  --warehouse "${whdir}/wh" > "${whdir}/record.txt" 2>/dev/null
TLSHARM_POPULATION=1500 TLSHARM_DAYS=6 "${bench}" \
  --warehouse "${whdir}/wh" > "${whdir}/replay.txt" 2>/dev/null
diff <(grep -v "built in" "${whdir}/live.txt") \
     <(grep -v "built in" "${whdir}/record.txt")
diff <(grep -v "built in" "${whdir}/live.txt") \
     <(grep -v "built in" "${whdir}/replay.txt")
echo "record and replay match the live scan"

# Performance-plane gate (obs/prof.h). Three properties:
#   1. Isolation — profiling must never leak into the deterministic plane:
#      scanstats --selftest already cross-checks metrics/trace/store bytes
#      prof-on vs prof-off at 1 and 8 threads; running the whole selftest
#      under TLSHARM_PROF=1 additionally proves the env-seeded path, and a
#      campaign run with profiling + the progress heartbeat must produce a
#      byte-identical campaign directory.
#   2. The tooling works — tlsharm-prof profiles a campaign, writes a
#      Chrome trace, and reloads that trace file.
#   3. Overhead budget — bench_prof's projected whole-scan cost of the
#      disabled-path span checks: warn past 1%, fail past 5%.
echo "== performance plane: scanstats --selftest under TLSHARM_PROF=1 =="
TLSHARM_PROF=1 "${repo}/build/examples/scanstats" --selftest
echo "== performance plane: campaign artifacts identical prof on/off =="
TLSHARM_POPULATION=1200 TLSHARM_DAYS=2 "${repo}/build/examples/fleet_survey" \
  --campaign "${whdir}/camp-plain" > /dev/null
TLSHARM_POPULATION=1200 TLSHARM_DAYS=2 TLSHARM_PROF=1 \
  "${repo}/build/examples/fleet_survey" \
  --campaign "${whdir}/camp-prof" --progress > /dev/null 2>"${whdir}/heartbeat.txt"
diff -r "${whdir}/camp-plain" "${whdir}/camp-prof"
grep -q "progress: day" "${whdir}/heartbeat.txt"
echo "campaign directories are byte-identical; progress heartbeat seen"
echo "== performance plane: tlsharm-prof smoke (campaign + trace reload) =="
TLSHARM_POPULATION=1200 TLSHARM_DAYS=2 TLSHARM_PROF_TRACE="${whdir}/trace.json" \
  "${repo}/build/examples/tlsharm-prof" --campaign "${whdir}/camp-smoke" \
  > "${whdir}/prof-report.txt"
grep -q "attributed to named spans" "${whdir}/prof-report.txt"
"${repo}/build/examples/tlsharm-prof" "${whdir}/trace.json" > /dev/null
echo "== performance plane: disabled-path overhead budget =="
(cd "${whdir}" && TLSHARM_POPULATION=4000 TLSHARM_DAYS=2 TLSHARM_BENCH_REPS=1 \
  "${repo}/build/bench/bench_prof")
prof_overhead="$(sed -n 's/.*"disabled_overhead_pct": \([0-9.]*\).*/\1/p' \
  "${whdir}/BENCH_prof.json")"
if awk -v o="${prof_overhead}" 'BEGIN { exit !(o > 5.0) }'; then
  echo "FAIL: disabled-path profiling overhead ${prof_overhead}% exceeds" \
       "the 5% hard ceiling"
  exit 1
elif awk -v o="${prof_overhead}" 'BEGIN { exit !(o > 1.0) }'; then
  echo "WARN: disabled-path profiling overhead ${prof_overhead}% is past" \
       "the 1% budget (re-run on a quiet machine before trusting it)"
else
  echo "disabled-path profiling overhead ${prof_overhead}% is within the 1% budget"
fi

# Perf-correctness gate: the optimized crypto paths (windowed modexp,
# midstate HMAC/PRF, cross-probe memoization) must be observably identical
# to the naive reference implementations. Run the instrumented study both
# ways and diff every deterministic line of telemetry, then let
# bench_crypto's built-in differential harness cross-check each path pair
# (including a probe-loop observation digest).
echo "== perf-correctness: reference vs optimized crypto =="
TLSHARM_REFERENCE_CRYPTO=1 "${repo}/build/examples/scanstats" \
  > "${whdir}/stats-ref.txt"
"${repo}/build/examples/scanstats" > "${whdir}/stats-opt.txt"
diff <(grep -v "built in" "${whdir}/stats-ref.txt") \
     <(grep -v "built in" "${whdir}/stats-opt.txt")
echo "reference and optimized crypto produce identical scan telemetry"
echo "== perf-correctness: bench_crypto --selftest =="
"${repo}/build/bench/bench_crypto" --selftest

# Crash-recovery gate. The injection ladder (CrashRecoveryTest: kill the
# campaign runner at every durability-barrier class, resume, diff the
# campaign directory byte-for-byte against a crash-free golden run) already
# runs inside the plain ctest pass above; re-run it by name so a filtered
# invocation can never silently skip it, then check the journal's overhead
# budget: the per-day commit cost (journal rewrites, fsyncs, checkpoint +
# state encodes) must stay within 2% of the plain recording pipeline's
# probe throughput at survey scale — warn past 2% (timing noise on shared
# machines), fail past 10% (something structural regressed).
echo "== crash recovery: injection ladder (plain) =="
ctest --test-dir "${repo}/build" --output-on-failure -R 'CrashRecovery'
echo "== crash recovery: journal overhead budget =="
(cd "${whdir}" && TLSHARM_POPULATION=12000 TLSHARM_DAYS=4 \
  "${repo}/build/bench/bench_recovery")
overhead="$(sed -n 's/.*"journal_overhead_pct": \([0-9.]*\).*/\1/p' \
  "${whdir}/BENCH_recovery.json")"
if awk -v o="${overhead}" 'BEGIN { exit !(o > 10.0) }'; then
  echo "FAIL: journal overhead ${overhead}% exceeds the 10% hard ceiling"
  exit 1
elif awk -v o="${overhead}" 'BEGIN { exit !(o > 2.0) }'; then
  echo "WARN: journal overhead ${overhead}% is past the 2% budget" \
       "(re-run on a quiet machine before trusting this number)"
else
  echo "journal overhead ${overhead}% is within the 2% budget"
fi

# Adversary-plane gate. tlsharm-harm --selftest proves the record-now-
# decrypt-later pipeline end to end: capture archive byte-identical at
# 1/2/8 threads, harm curves identical live vs tape-replayed, the survivor
# taxonomy partitioning every curve point, the archive-derived sweep equal
# to a ground-truth snapshot replay at end of study, and the curve spans
# consistent with the analysis/vuln window estimates. bench_harm then
# checks the recorder's cost: warn past the 5% budget (timing noise on
# shared machines), fail past 15% (something structural regressed).
echo "== adversary plane: tlsharm-harm --selftest =="
"${repo}/build/examples/tlsharm-harm" --selftest
echo "== adversary plane: capture-overhead budget =="
(cd "${whdir}" && TLSHARM_POPULATION=4000 TLSHARM_DAYS=3 TLSHARM_BENCH_REPS=1 \
  "${repo}/build/bench/bench_harm")
cap_overhead="$(sed -n 's/.*"capture_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' \
  "${whdir}/BENCH_harm.json")"
if awk -v o="${cap_overhead}" 'BEGIN { exit !(o > 15.0) }'; then
  echo "FAIL: capture recording overhead ${cap_overhead}% exceeds the 15%" \
       "hard ceiling"
  exit 1
elif awk -v o="${cap_overhead}" 'BEGIN { exit !(o > 5.0) }'; then
  echo "WARN: capture recording overhead ${cap_overhead}% is past the 5%" \
       "budget (re-run on a quiet machine before trusting this number)"
else
  echo "capture recording overhead ${cap_overhead}% is within the 5% budget"
fi

# Memory-budget gate (million-domain readiness at CI scale). A 64k-domain,
# 2-day lazy-fleet scan through `bench_scan_engine --memcheck`, gated on
# the process VmHWM it reports. The budget math (DESIGN.md §Scaling): the
# blueprint columns are ~tens of bytes per domain, the derived working set
# is capped by the fleet budget (default 384 MiB, and a 64k fleet doesn't
# come near it), and the scan path buffers O(batch), not O(day) — so peak
# RSS at this scale sits around 150 MB. Warn past 256 MB (allocator or
# layout drift worth a look), fail past 512 MB (something is accumulating
# per-domain or per-day state again — the exact regression this gate
# exists to catch).
echo "== memory budget: bench_scan_engine --memcheck (64k domains, lazy) =="
memline="$("${repo}/build/bench/bench_scan_engine" --memcheck)"
echo "${memline}"
peak_mb="$(sed -n 's/.*peak_rss_mb=\([0-9.]*\).*/\1/p' <<<"${memline}")"
if awk -v m="${peak_mb}" 'BEGIN { exit !(m > 512.0) }'; then
  echo "FAIL: peak RSS ${peak_mb} MB exceeds the 512 MB hard ceiling for a" \
       "64k-domain lazy-fleet scan"
  exit 1
elif awk -v m="${peak_mb}" 'BEGIN { exit !(m > 256.0) }'; then
  echo "WARN: peak RSS ${peak_mb} MB is past the 256 MB budget for a" \
       "64k-domain lazy-fleet scan (investigate before trusting this run)"
else
  echo "peak RSS ${peak_mb} MB is within the 256 MB budget"
fi

run_config "sanitized" "${repo}/build-asan" -DTLSHARM_SANITIZE=ON
echo "== crash recovery: injection ladder (ASan + UBSan) =="
ctest --test-dir "${repo}/build-asan" --output-on-failure -R 'CrashRecovery'
# The lazy-fleet equivalence battery by name, so a filtered invocation can
# never silently skip the tentpole contract: derive-on-demand + eviction +
# rebuild must produce byte-identical artifacts, with ASan watching the
# evict/rebuild lifetimes (a stale reference into an evicted terminator is
# exactly the bug class this pairing catches).
echo "== memory-bounded fleet: equivalence battery (ASan + UBSan) =="
ctest --test-dir "${repo}/build-asan" --output-on-failure -R 'FleetEquivalence'
echo "== sanitized: bench_crypto --selftest (ASan + UBSan) =="
"${repo}/build-asan/bench/bench_crypto" --selftest
echo "== sanitized: tlsharm-harm --selftest (ASan + UBSan) =="
"${repo}/build-asan/examples/tlsharm-harm" --selftest
run_config "tsan" "${repo}/build-tsan" \
  --filter 'CryptoVectors|Differential|ParallelDeterminism|Sharded|Telemetry|Prof' \
  -DTLSHARM_SANITIZE=thread
echo "== tsan: bench_crypto --selftest =="
"${repo}/build-tsan/bench/bench_crypto" --selftest
# The profiling span path (thread-local buffers, registry mutex, the
# relaxed enable flag) under TSan, driven by a real sharded scan.
echo "== tsan: scanstats --selftest under TLSHARM_PROF=1 =="
TLSHARM_PROF=1 "${repo}/build-tsan/examples/scanstats" --selftest

echo "All checks passed (plain + observability + warehouse + performance-plane + perf-correctness + crash-recovery + adversary-plane + sanitized + tsan)."
